"""Streaming-ingest watch mode: the quality/time frontier of a growing index.

The paper's experiments all search a *frozen* collection; this driver
watches the same quality/time trade-off while the collection is alive.
Starting from a base index built over a 10% prefix of the seeded
synthetic collection, the run grows the on-disk streaming index
(:class:`~repro.core.ingest.StreamingChunkIndex`) step by step to 100%,
and at every step interleaves:

* **mutation** — seeded WAL batches of inserts plus a fraction of
  deletes, each acknowledged only after its group commit;
* **crashes** — optional seeded kills at WAL/segment/rename boundaries
  (:mod:`repro.faults.crash_plan`); every kill is followed by recovery,
  an inline ``verify-index`` deep check, and resubmission of exactly the
  batches that were never acknowledged;
* **compaction** — periodic checkpoints (dirty-chunk delta segments +
  WAL rotation) and one mid-run base rebuild, their simulated write cost
  charged through the same disk model as the queries;
* **queries** — a budgeted batch search (pruning, centroid routing and
  the LRU chunk cache all enabled) measured for recall against the exact
  ground truth of the *current* live contents and for simulated elapsed
  time.

Everything is a pure function of ``(scale, seed, knobs)``: two runs with
the same arguments emit byte-identical JSON reports (the working
directory never appears in the report), which the CI smoke job asserts.

:func:`crash_matrix` is the acceptance drill: it records every protocol
boundary the scenario crosses, then re-runs the scenario killing the
writer at each (or a seeded subset), recovering, deep-verifying, and
checking that searches on the recovered index are bit-identical to a
fresh batch build of the same logical contents.
"""

from __future__ import annotations

import dataclasses
import os
import shutil
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..chunking.srtree_chunker import SRTreeChunker
from ..core.batch_search import BatchChunkSearcher
from ..core.chunk_index import ChunkIndex, build_chunk_index
from ..core.dataset import DescriptorCollection
from ..core.ground_truth import exact_knn_batch
from ..core.ingest import StreamingChunkIndex, verify_streaming_index
from ..core.metrics import precision_at_k
from ..core.routing import CentroidRouter
from ..core.stop_rules import MaxChunks
from ..faults.crash_plan import InjectedCrash, RecordingCrashPlan, seeded_crash_steps
from ..simio.chunk_cache import LruChunkCache
from ..workloads.synthetic import generate_collection
from .config import ExperimentScale

__all__ = [
    "DEFAULT_SEED",
    "IngestSimConfig",
    "simulate",
    "crash_matrix",
]

#: Root seed of the default run (the paper's publication year).
DEFAULT_SEED = 2005

#: SeedSequence stream tags for the run's independent random consumers.
_STREAM_ORDER = 11
_STREAM_DELETES = 12
_STREAM_QUERIES = 13
_STREAM_CRASH_SCHEDULE = 14


@dataclasses.dataclass(frozen=True)
class IngestSimConfig:
    """Knobs of one watch-mode run (all seeded, all in the report)."""

    steps: int = 9  #: growth steps from the 10% base to 100%
    batch_ops: int = 24  #: operations per WAL batch (group-commit unit)
    delete_fraction: float = 0.15  #: deletes per step, as a fraction of inserts
    n_queries: int = 12  #: interleaved queries per step
    budget_fraction: float = 0.5  #: MaxChunks budget as a fraction of chunks
    compact_every: int = 3  #: checkpoint (compaction) period, in steps
    rebuild_step: Optional[int] = None  #: step of the base rebuild (None = midpoint)
    n_crashes: int = 0  #: seeded kills injected across the whole run
    leaf_capacity: int = 48  #: SR-tree leaf capacity of the base build

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise ValueError("need at least one growth step")
        if self.batch_ops < 1:
            raise ValueError("a batch needs at least one operation")
        if not 0.0 <= self.delete_fraction < 1.0:
            raise ValueError("delete fraction must lie in [0, 1)")
        if self.n_queries < 1:
            raise ValueError("need at least one query per step")
        if not 0.0 < self.budget_fraction <= 1.0:
            raise ValueError("budget fraction must lie in (0, 1]")
        if self.compact_every < 1:
            raise ValueError("compaction period must be positive")
        if self.n_crashes < 0:
            raise ValueError("crash count cannot be negative")
        if self.leaf_capacity < 2:
            raise ValueError("leaf capacity must be at least 2")


class _CrashSchedule:
    """Crash at a fixed set of global boundary indices, once each.

    Unlike :class:`~repro.faults.crash_plan.CrashAtStep` the counter
    survives recovery — the same schedule object is handed back to the
    reopened index, so a run with N scheduled kills crashes exactly N
    times at deterministic boundaries.
    """

    def __init__(self, steps: Sequence[int]):
        self.remaining: Set[int] = set(int(s) for s in steps)
        self.counter = 0
        self.crashes: List[Tuple[int, str]] = []

    def reached(self, site: str) -> None:
        step = self.counter
        self.counter += 1
        if step in self.remaining:
            self.remaining.discard(step)
            self.crashes.append((step, site))
            raise InjectedCrash(site, step)


def _subcollection(
    collection: DescriptorCollection, rows: np.ndarray
) -> DescriptorCollection:
    return DescriptorCollection(
        vectors=collection.vectors[rows],
        ids=collection.ids[rows],
        image_ids=collection.image_ids[rows],
    )


def _build_base(
    collection: DescriptorCollection, rows: np.ndarray, leaf_capacity: int
) -> ChunkIndex:
    base = _subcollection(collection, rows)
    chunking = SRTreeChunker(leaf_capacity=leaf_capacity).form_chunks(base)
    return build_chunk_index(chunking.retained, chunking.chunk_set, name="ingestsim")


def _live_collection(streaming: StreamingChunkIndex) -> DescriptorCollection:
    """The current logical contents, in chunk order (ground-truth input)."""
    ids: List[int] = []
    blocks: List[np.ndarray] = []
    for position in range(streaming.maintainer.n_chunks):
        snap = streaming.maintainer.snapshot(position)
        ids.extend(snap.ids)
        blocks.append(snap.vectors)
    return DescriptorCollection(
        vectors=np.concatenate(blocks, axis=0),
        ids=np.asarray(ids, dtype=np.int64),
        image_ids=np.zeros(len(ids), dtype=np.int64),
    )


class _IngestDriver:
    """Applies batches with ack tracking, recovery and resubmission."""

    def __init__(self, directory: str, crash: Optional[_CrashSchedule]):
        self.directory = directory
        self.crash = crash
        self.streaming: Optional[StreamingChunkIndex] = None
        self.recoveries = 0
        self.replayed_unacked = 0
        self.verifications_failed = 0
        self.io_seconds = 0.0
        self._pending: List[Tuple[int, Sequence[Any]]] = []  # (seq, ops) not acked
        self._next_seq = 0

    def attach(self, streaming: StreamingChunkIndex) -> None:
        self.streaming = streaming
        self._next_seq = streaming.last_batch_seq + 1

    def _recover(self) -> None:
        """Reopen after a crash, deep-verify, resubmit unacknowledged work."""
        assert self.streaming is not None
        self.streaming.close()
        self.io_seconds += self.streaming.io_seconds
        self.recoveries += 1
        report = verify_streaming_index(self.directory)
        if not report["ok"]:
            self.verifications_failed += 1
        recovered = StreamingChunkIndex.open(self.directory, crash=self.crash)
        self.streaming = recovered
        self._next_seq = recovered.last_batch_seq + 1
        # Resubmit exactly the batches never acknowledged: those whose
        # sequence the recovered log does not already hold ("unacknowledged
        # absent"); the rest were fully applied by replay ("unacknowledged
        # fully applied") and must not run twice.
        to_resubmit = [ops for seq, ops in self._pending if seq >= self._next_seq]
        self.replayed_unacked += len(self._pending) - len(to_resubmit)
        self._pending = []
        for ops in to_resubmit:
            self.apply(ops)

    def apply(self, ops: Sequence[Any]) -> None:
        assert self.streaming is not None
        self._pending.append((self._next_seq, ops))
        try:
            self.streaming.apply(ops)
        except InjectedCrash:
            self._recover()
            return
        self._next_seq += 1
        self._pending.pop()

    def checkpoint(self, defragment: bool = False) -> None:
        assert self.streaming is not None
        try:
            self.streaming.checkpoint(defragment=defragment)
        except InjectedCrash:
            self._recover()

    def rebuild(self) -> None:
        assert self.streaming is not None
        try:
            self.streaming.rebuild_base()
        except InjectedCrash:
            self._recover()

    def close(self) -> float:
        assert self.streaming is not None
        self.io_seconds += self.streaming.io_seconds
        self.streaming.close()
        return self.io_seconds


def simulate(
    scale: ExperimentScale,
    directory: str,
    seed: int = DEFAULT_SEED,
    config: Optional[IngestSimConfig] = None,
) -> Dict[str, Any]:
    """One watch-mode run; returns the JSON-ready report.

    ``directory`` is the working directory for the on-disk index (it is
    created, used and never mentioned in the report, so reports from
    different machines compare byte-for-byte).
    """
    cfg = config or IngestSimConfig()
    collection = generate_collection(scale.synthetic)
    n_total = len(collection)
    dimensions = collection.dimensions
    if n_total < (cfg.steps + 1) * 2:
        raise ValueError("collection too small for the requested step count")

    order_rng = np.random.Generator(
        np.random.PCG64(np.random.SeedSequence(entropy=(int(seed), _STREAM_ORDER)))
    )
    arrival = order_rng.permutation(n_total)
    base_size = max(cfg.leaf_capacity, n_total // (cfg.steps + 1))
    base_rows = np.sort(arrival[:base_size])
    stream_rows = arrival[base_size:]

    crash: Optional[_CrashSchedule] = None
    if cfg.n_crashes:
        # Boundary budget: three WAL sites per batch plus compaction and
        # rebuild sites; kills land in the earlier ~2/3 of that span so
        # each is followed by real work that exercises the recovery.
        n_batches = -(-stream_rows.size // cfg.batch_ops)
        horizon = max(1, (3 * n_batches * 2) // 3)
        crash = _CrashSchedule(
            seeded_crash_steps(
                int(seed) * 1000 + _STREAM_CRASH_SCHEDULE, horizon, cfg.n_crashes
            )
        )

    delete_rng = np.random.Generator(
        np.random.PCG64(np.random.SeedSequence(entropy=(int(seed), _STREAM_DELETES)))
    )
    query_rng = np.random.Generator(
        np.random.PCG64(np.random.SeedSequence(entropy=(int(seed), _STREAM_QUERIES)))
    )

    os.makedirs(directory, exist_ok=True)
    index = _build_base(collection, base_rows, cfg.leaf_capacity)
    driver = _IngestDriver(directory, crash)
    driver.attach(
        StreamingChunkIndex.create(
            directory,
            index,
            disk=scale.cost_model.disk,
            crash=crash,
            name="ingestsim",
        )
    )

    from ..storage.wal import delete_op, insert_op

    next_id_offset = int(collection.ids.max()) + 1  # deleted-then-reborn ids stay unique
    rebuild_step = (
        cfg.rebuild_step if cfg.rebuild_step is not None else (cfg.steps + 1) // 2
    )
    per_step = -(-stream_rows.size // cfg.steps)
    rows_series: List[Dict[str, Any]] = []
    cursor = 0
    for step in range(1, cfg.steps + 1):
        step_rows = stream_rows[cursor : cursor + per_step]
        cursor += step_rows.size
        # Mutations: inserts in seeded arrival order, with a seeded
        # fraction of deletes of currently-live ids mixed in per batch.
        ops: List[Any] = []
        for row in step_rows:
            ops.append(
                insert_op(int(collection.ids[row]), collection.vectors[row])
            )
            if len(ops) >= cfg.batch_ops:
                driver.apply(ops)
                ops = []
        if ops:
            driver.apply(ops)
        n_deletes = int(cfg.delete_fraction * step_rows.size)
        assert driver.streaming is not None
        maintainer = driver.streaming.maintainer
        if n_deletes and len(maintainer) > n_deletes:
            live_ids = sorted(
                int(i)
                for position in range(maintainer.n_chunks)
                for i in maintainer.snapshot(position).ids
            )
            victims = delete_rng.choice(
                len(live_ids), size=n_deletes, replace=False
            )
            delete_batch = [
                delete_op(live_ids[int(v)]) for v in np.sort(victims)
            ]
            for start in range(0, len(delete_batch), cfg.batch_ops):
                driver.apply(delete_batch[start : start + cfg.batch_ops])
        # Maintenance: periodic compaction, one mid-run base rebuild.
        if step == rebuild_step:
            driver.rebuild()
        elif step % cfg.compact_every == 0:
            driver.checkpoint(defragment=True)

        # Queries against the current index: pruning + router + cache on,
        # budgeted scan, recall vs the live contents' exact ground truth.
        assert driver.streaming is not None
        live = _live_collection(driver.streaming)
        searchable = driver.streaming.to_index()
        query_rows = query_rng.choice(len(live), size=cfg.n_queries, replace=False)
        queries = live.vectors[np.sort(query_rows)].astype(np.float64)
        truth = exact_knn_batch(live, queries, scale.k)
        budget = max(1, int(round(cfg.budget_fraction * searchable.n_chunks)))
        cost_model = dataclasses.replace(
            scale.cost_model, chunk_cache=LruChunkCache(capacity_bytes=1 << 20)
        )
        searcher = BatchChunkSearcher(
            searchable,
            cost_model=cost_model,
            prune=True,
            router=CentroidRouter.from_index(searchable),
        )
        batch = searcher.search_batch(
            queries, k=scale.k, stop_rule=MaxChunks(budget)
        )
        recalls = [
            precision_at_k(result.neighbor_ids(), truth[i])
            for i, result in enumerate(batch)
        ]
        stats = maintainer.stats
        rows_series.append(
            {
                "step": step,
                "fraction": round((base_size + cursor) / n_total, 4),
                "n_descriptors": len(maintainer),
                "n_chunks": maintainer.n_chunks,
                "recall": round(sum(recalls) / len(recalls), 4),
                "elapsed_ms": round(
                    1000.0 * sum(r.elapsed_s for r in batch) / len(batch), 4
                ),
                "ingest_io_s": round(
                    driver.io_seconds + driver.streaming.io_seconds, 4
                ),
                "budget_chunks": budget,
                "inserts": stats.inserts,
                "deletes": stats.deletes,
                "splits": stats.splits,
                "merges": stats.merges,
                "recoveries": driver.recoveries,
            }
        )

    total_io = driver.close()
    final_verify = verify_streaming_index(directory)
    return {
        "experiment": "ingestsim",
        "scale": scale.name,
        "seed": int(seed),
        "k": int(scale.k),
        "dimensions": dimensions,
        "config": {
            "steps": cfg.steps,
            "batch_ops": cfg.batch_ops,
            "delete_fraction": cfg.delete_fraction,
            "n_queries": cfg.n_queries,
            "budget_fraction": cfg.budget_fraction,
            "compact_every": cfg.compact_every,
            "rebuild_step": rebuild_step,
            "n_crashes": cfg.n_crashes,
            "leaf_capacity": cfg.leaf_capacity,
        },
        "n_total": n_total,
        "base_size": int(base_size),
        "crashes_injected": driver.recoveries,
        "unacked_batches_replayed": driver.replayed_unacked,
        "verifications_failed": driver.verifications_failed,
        "final_verify_ok": bool(final_verify["ok"]),
        "total_ingest_io_s": round(total_io, 4),
        "series": rows_series,
    }


def _matrix_scenario(
    collection: DescriptorCollection,
    directory: str,
    crash: Optional[Any],
    leaf_capacity: int,
    seed: int,
) -> StreamingChunkIndex:
    """The fixed small workload every crash-matrix run repeats.

    Creation runs crash-free (an unfinished creation has acknowledged
    nothing — there is nothing to recover); the mutation protocol —
    batches, a compaction checkpoint, a base rebuild, more batches —
    runs under the plan.
    """
    from ..storage.wal import delete_op, insert_op

    n = len(collection)
    base_rows = np.arange(n // 2)
    index = _build_base(collection, base_rows, leaf_capacity)
    StreamingChunkIndex.create(directory, index, name="crash-matrix").close()

    streaming = StreamingChunkIndex.open(directory, crash=crash)
    rng = np.random.Generator(
        np.random.PCG64(np.random.SeedSequence(entropy=(int(seed), _STREAM_ORDER)))
    )
    extra = np.arange(n // 2, n)
    thirds = np.array_split(extra, 3)
    victims = rng.choice(n // 2, size=3, replace=False)
    for i, block in enumerate(thirds):
        ops: List[Any] = [
            insert_op(int(collection.ids[row]), collection.vectors[row])
            for row in block
        ]
        ops.append(delete_op(int(collection.ids[int(victims[i])])))
        streaming.apply(ops)
        if i == 0:
            streaming.checkpoint(defragment=True)
        elif i == 1:
            streaming.rebuild_base()
    return streaming


def crash_matrix(
    scale: ExperimentScale,
    directory: str,
    seed: int = DEFAULT_SEED,
    n_points: Optional[int] = None,
    leaf_capacity: int = 24,
) -> Dict[str, Any]:
    """Kill the writer at every protocol boundary; verify every recovery.

    A recording pass enumerates the boundaries the scenario crosses;
    each selected boundary (all of them, or a seeded ``n_points`` subset)
    then gets its own run that crashes there, recovers, and must pass the
    deep verifier with no acknowledged work lost.  Returns a JSON-ready
    report whose ``all_ok`` is the verdict.
    """
    from ..faults.crash_plan import CrashAtStep

    collection = generate_collection(
        dataclasses.replace(scale.synthetic, n_images=max(2, scale.synthetic.n_images // 8))
    )
    os.makedirs(directory, exist_ok=True)

    recording_dir = os.path.join(directory, "recording")
    recording = RecordingCrashPlan()
    _matrix_scenario(collection, recording_dir, recording, leaf_capacity, seed).close()
    reference = verify_streaming_index(recording_dir)
    reference_count = int(reference.get("n_descriptors", -1))
    shutil.rmtree(recording_dir)

    n_sites = len(recording.sites)
    selected = (
        tuple(range(n_sites))
        if n_points is None
        else seeded_crash_steps(seed, n_sites, n_points)
    )
    results: List[Dict[str, Any]] = []
    for step in selected:
        run_dir = os.path.join(directory, f"crash-{step:04d}")
        crashed = False
        try:
            _matrix_scenario(
                collection, run_dir, CrashAtStep(step), leaf_capacity, seed
            ).close()
        except InjectedCrash:
            crashed = True
        report = verify_streaming_index(run_dir)
        recovered = StreamingChunkIndex.open(run_dir)
        n_after = recovered.n_descriptors
        recovered.close()
        shutil.rmtree(run_dir)
        results.append(
            {
                "step": int(step),
                "site": recording.sites[step],
                "crashed": crashed,
                "verify_ok": bool(report["ok"]),
                "n_descriptors": int(n_after),
            }
        )
    all_ok = all(r["crashed"] and r["verify_ok"] for r in results)
    return {
        "experiment": "ingestsim-crash-matrix",
        "scale": scale.name,
        "seed": int(seed),
        "n_sites": n_sites,
        "sites": list(recording.sites),
        "selected_steps": [int(s) for s in selected],
        "uncrashed_n_descriptors": reference_count,
        "uncrashed_verify_ok": bool(reference["ok"]),
        "results": results,
        "all_ok": bool(all_ok and reference["ok"]),
    }
