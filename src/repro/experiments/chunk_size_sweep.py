"""Figures 6-7 — effect of chunk size (the optimal-chunk-size experiment).

The paper's Experiment 2 (section 5.6): after establishing that uniform
chunks are preferable, 16 SR-tree chunk indexes with leaf capacities
spanning three decades are built over the outlier-free collection, and the
time to find {1, 10, 20, 25, 28, 30} of the 30 nearest neighbors is
plotted against chunk size (log x-axis) for both workloads.

Expected shape (paper): a wide flat valley — chunk sizes across roughly a
decade in the middle of the range perform alike; very small chunks pay
per-chunk positioning and index overheads, very large chunks pay CPU for
irrelevant descriptors.  The "30 neighbors" series sits far above the
"1 neighbor" series and is more sensitive at the small end.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple, Union

from ..chunking.srtree_chunker import SRTreeChunker
from ..core.batch_search import BatchChunkSearcher
from ..core.chunk_index import build_chunk_index
from ..core.trace import SearchTrace
from .checkpoint import SweepCheckpoint
from .data import ExperimentData
from .results import FigureResult

__all__ = ["run_fig6", "run_fig7", "sweep_traces", "NEIGHBOR_TARGETS"]

#: The neighbor-count series the paper plots.
NEIGHBOR_TARGETS = (1, 10, 20, 25, 28, 30)

#: Per-scale cache of sweep traces: {scale: {(leaf, workload): traces}}.
_SWEEP_CACHE: Dict[str, Dict[Tuple[int, str], List[SearchTrace]]] = {}


def sweep_traces(
    data: ExperimentData, leaf_capacity: int, workload_name: str
) -> List[SearchTrace]:
    """Completion traces for one ladder index on one workload (cached).

    The sweep uses the SMALL retained collection (the paper's Experiment 2
    uses the 4,471,532 retained descriptors) and the first
    ``n_queries_sweep`` queries of the main workloads.
    """
    cache = _SWEEP_CACHE.setdefault(data.scale.name, {})
    key = (leaf_capacity, workload_name)
    if key not in cache:
        retained = data.retained("SMALL")
        chunking = SRTreeChunker(leaf_capacity).form_chunks(retained)
        index = build_chunk_index(
            chunking.retained, chunking.chunk_set, name=f"SR/leaf={leaf_capacity}"
        )
        searcher = BatchChunkSearcher(index, cost_model=data.scale.cost_model)
        truth = data.ground_truth("SMALL", workload_name)
        workload = data.workloads[workload_name]
        n_sweep = data.scale.n_queries_sweep
        batch = searcher.search_batch(
            workload.queries[:n_sweep],
            k=data.scale.k,
            true_neighbor_ids=[truth.get(i) for i in range(n_sweep)],
        )
        cache[key] = batch.traces()
    return cache[key]


def _sweep_figure(
    data: ExperimentData,
    workload_name: str,
    experiment_id: str,
    checkpoint_path: Optional[Union[str, os.PathLike]] = None,
) -> FigureResult:
    ladder = [
        leaf for leaf in data.scale.chunk_size_ladder
        if leaf <= len(data.retained("SMALL"))
    ]
    targets = [t for t in NEIGHBOR_TARGETS if t <= data.scale.k]

    def label(t: int) -> str:
        return "1 neighbor" if t == 1 else f"{t} neighbors"

    checkpoint = None
    if checkpoint_path is not None:
        checkpoint = SweepCheckpoint(
            checkpoint_path,
            meta={
                "experiment": experiment_id,
                "scale": data.scale.name,
                "workload": workload_name,
                "k": int(data.scale.k),
                "n_queries_sweep": int(data.scale.n_queries_sweep),
                "ladder": [int(leaf) for leaf in ladder],
            },
        )
    series: Dict[str, List[float]] = {label(t): [] for t in targets}
    for leaf in ladder:
        key = f"leaf={int(leaf)}"
        point = checkpoint.get(key) if checkpoint is not None else None
        if point is None:
            # Build-index + run-workload: the expensive, resumable granule.
            traces = sweep_traces(data, leaf, workload_name)
            point = {
                label(target): sum(
                    trace.time_to_find(target) for trace in traces
                ) / len(traces)
                for target in targets
            }
            if checkpoint is not None:
                checkpoint.put(key, point)
                point = checkpoint.get(key)
        for target in targets:
            series[label(target)].append(float(point[label(target)]))  # type: ignore[index,call-overload]
    return FigureResult(
        experiment_id=experiment_id,
        title=(
            f"Effect of different chunk sizes ({workload_name} workload): "
            "time (s) to find N neighbors"
        ),
        x_label="chunk size",
        x_values=ladder,
        series=series,
        precision=4,
    )


def run_fig6(
    data: ExperimentData,
    checkpoint_path: Optional[Union[str, os.PathLike]] = None,
) -> FigureResult:
    return _sweep_figure(data, "DQ", "fig6", checkpoint_path)


def run_fig7(
    data: ExperimentData,
    checkpoint_path: Optional[Union[str, os.PathLike]] = None,
) -> FigureResult:
    return _sweep_figure(data, "SQ", "fig7", checkpoint_path)
