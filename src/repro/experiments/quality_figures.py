"""Figures 2-5 — quality of intermediate results versus cost.

All four figures derive from the same run-to-completion traces:

* Figure 2: chunks read to find N in [0, 30] nearest neighbors, DQ.
* Figure 3: same, SQ.
* Figure 4: elapsed (simulated) seconds to find N neighbors, DQ.
* Figure 5: same, SQ.

Expected shapes (paper):

* Fig 2: BAG needs fewer chunks than SR for the same N (reading 5 chunks
  yields ~25-28 neighbors for BAG vs ~16-20 for SR); chunk size has only a
  small effect.
* Fig 3: the gap closes — SR is slightly better, because BAG must read
  several small chunks where SR reads a few uniform ones.
* Fig 4: the story inverts — the first neighbors take much longer with
  BAG, whose giant chunks cost seconds of CPU before any result surfaces,
  while each SR chunk costs ~10 ms; BAG catches up near completion.
* Fig 5: all six indexes perform very similarly (BAG's giant chunks are
  avoided for space queries).
"""

from __future__ import annotations

from typing import Dict, List

from ..core.metrics import curves_from_traces
from .config import SIZE_CLASSES
from .data import FAMILIES, ExperimentData
from .results import FigureResult

__all__ = ["run_fig2", "run_fig3", "run_fig4", "run_fig5", "quality_curves"]


def quality_curves(data: ExperimentData, workload_name: str):
    """Averaged quality-vs-cost curves for all six indexes on one workload.

    Returns ``{label: QualityCurves}`` (label e.g. ``"BAG/SMALL"``).
    """
    curves = {}
    for family in FAMILIES:
        for size_class in SIZE_CLASSES:
            traces = data.completion_traces(family, size_class, workload_name)
            curves[f"{family}/{size_class}"] = curves_from_traces(
                traces, data.scale.k
            )
    return curves


def _figure(
    data: ExperimentData,
    workload_name: str,
    metric: str,
    experiment_id: str,
    title: str,
) -> FigureResult:
    curves = quality_curves(data, workload_name)
    x_values = list(range(data.scale.k + 1))
    series: Dict[str, List[float]] = {}
    for label, quality in curves.items():
        values = quality.chunks_read if metric == "chunks" else quality.elapsed_s
        series[label] = [float(v) for v in values]
    return FigureResult(
        experiment_id=experiment_id,
        title=title,
        x_label="neighbors found",
        x_values=x_values,
        series=series,
        precision=2 if metric == "chunks" else 4,
    )


def run_fig2(data: ExperimentData) -> FigureResult:
    return _figure(
        data, "DQ", "chunks", "fig2",
        "Chunks required to find nearest neighbors (DQ workload)",
    )


def run_fig3(data: ExperimentData) -> FigureResult:
    return _figure(
        data, "SQ", "chunks", "fig3",
        "Chunks required to find nearest neighbors (SQ workload)",
    )


def run_fig4(data: ExperimentData) -> FigureResult:
    return _figure(
        data, "DQ", "elapsed", "fig4",
        "Elapsed time (s) required to find nearest neighbors (DQ workload)",
    )


def run_fig5(data: ExperimentData) -> FigureResult:
    return _figure(
        data, "SQ", "elapsed", "fig5",
        "Elapsed time (s) required to find nearest neighbors (SQ workload)",
    )
