"""Fault-injection sweep: search quality vs storage fault rate.

The paper quantifies how much quality survives when *time* is cut short;
this driver quantifies how much survives when *storage* fails underneath
the same search.  For each fault rate ``r`` a seeded
:class:`~repro.faults.plan.FaultPlan` (``FaultPlan.balanced``: failures
split evenly across read errors / corruption / truncation, latency
spikes at the same rate) is injected into the exact search over one
(family, size class, workload) triple, and the run records:

* ``recall`` — mean precision@k against the fault-free ground truth
  (with fixed result size, precision equals recall, as in section 5.4);
* ``coverage`` — mean fraction of visited descriptors actually scanned;
* ``degraded_fraction`` — queries that lost at least one chunk;
* ``chunks_skipped`` — mean abandoned chunks per query;
* ``elapsed_ms`` — mean simulated completion time, where the retry,
  backoff and spike latency surfaces.

Everything is a pure function of ``(scale, rates, seed)``: two runs with
the same arguments emit byte-identical JSON reports, which the CI smoke
job asserts.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.batch_search import BatchChunkSearcher
from ..core.metrics import precision_at_k, robustness_stats
from ..faults.injector import FaultInjector
from ..faults.plan import FaultPlan
from .checkpoint import SweepCheckpoint
from .data import ExperimentData
from .results import FigureResult

__all__ = ["run", "sweep", "report", "DEFAULT_RATES", "DEFAULT_SEED"]

#: Fault rates swept by default (per-(query, chunk) failure probability;
#: spikes occur at the same rate — see ``FaultPlan.balanced``).
DEFAULT_RATES: Tuple[float, ...] = (0.0, 0.02, 0.05, 0.1, 0.2, 0.35)

#: Root seed of the default sweep (the paper's publication year).
DEFAULT_SEED = 2005


_SERIES_NAMES = (
    "recall",
    "coverage",
    "degraded_fraction",
    "chunks_skipped",
    "elapsed_ms",
)


def sweep(
    data: ExperimentData,
    family: str = "SR",
    size_class: str = "MEDIUM",
    workload_name: str = "DQ",
    rates: Sequence[float] = DEFAULT_RATES,
    seed: int = DEFAULT_SEED,
    checkpoint_path: Optional[Union[str, os.PathLike]] = None,
) -> FigureResult:
    """Run the exact search under each fault rate; returns the curves.

    ``checkpoint_path`` enables point-by-point resume: each completed
    rate is published atomically, and a rerun with the same arguments
    skips rates the checkpoint already holds (a point is one whole
    workload run, so this is the natural crash-recovery granule).
    """
    if not rates:
        raise ValueError("need at least one fault rate")
    checkpoint = None
    if checkpoint_path is not None:
        checkpoint = SweepCheckpoint(
            checkpoint_path,
            meta={
                "experiment": "faultsim",
                "scale": data.scale.name,
                "family": family,
                "size_class": size_class,
                "workload": workload_name,
                "seed": int(seed),
                "k": int(data.scale.k),
                "n_queries": len(data.workloads[workload_name]),
            },
        )
    built = data.built(family, size_class)
    workload = data.workloads[workload_name]
    truth = data.ground_truth(size_class, workload_name)
    truth_lists: List[Optional[Sequence[int]]] = [
        truth.get(i) for i in range(len(workload))
    ]
    searcher = BatchChunkSearcher(built.index, cost_model=data.scale.cost_model)

    series: Dict[str, List[float]] = {name: [] for name in _SERIES_NAMES}
    for rate in rates:
        key = f"rate={float(rate):g}"
        point = checkpoint.get(key) if checkpoint is not None else None
        if point is None:
            plan = FaultPlan.balanced(float(rate), seed=seed)
            faults = FaultInjector.from_cost_model(plan, data.scale.cost_model)
            batch = searcher.search_batch(
                workload.queries,
                k=data.scale.k,
                true_neighbor_ids=truth_lists,
                faults=faults,
            )
            recalls = [
                precision_at_k(result.neighbor_ids(), truth.get(i))
                for i, result in enumerate(batch)
            ]
            stats = robustness_stats(batch.traces())
            point = {
                "recall": sum(recalls) / len(recalls),
                "coverage": stats.mean_coverage,
                "degraded_fraction": stats.degraded_fraction,
                "chunks_skipped": stats.mean_chunks_skipped,
                "elapsed_ms": stats.mean_elapsed_s * 1000.0,
            }
            if checkpoint is not None:
                checkpoint.put(key, point)
                point = checkpoint.get(key)  # the JSON round-tripped value
        for name in _SERIES_NAMES:
            series[name].append(float(point[name]))  # type: ignore[index,call-overload]

    return FigureResult(
        experiment_id="faultsim",
        title=(
            f"Quality vs fault rate — {family}/{size_class}, "
            f"{workload_name} workload, seed {seed}"
        ),
        x_label="fault_rate",
        x_values=[float(r) for r in rates],
        series=series,
        precision=4,
    )


def run(data: ExperimentData) -> FigureResult:
    """Default sweep (``repro experiment faultsim``)."""
    return sweep(data)


def report(
    data: ExperimentData,
    family: str = "SR",
    size_class: str = "MEDIUM",
    workload_name: str = "DQ",
    rates: Sequence[float] = DEFAULT_RATES,
    seed: int = DEFAULT_SEED,
    figure: Optional[FigureResult] = None,
    checkpoint_path: Optional[Union[str, os.PathLike]] = None,
) -> Dict[str, object]:
    """The sweep as a JSON-ready dict (the determinism-check artefact).

    Pass ``figure`` to wrap an already-computed :func:`sweep` result
    (with matching arguments) instead of re-running the sweep.
    """
    if figure is None:
        figure = sweep(
            data, family, size_class, workload_name, rates, seed,
            checkpoint_path=checkpoint_path,
        )
    return {
        "experiment": "faultsim",
        "scale": data.scale.name,
        "family": family,
        "size_class": size_class,
        "workload": workload_name,
        "seed": int(seed),
        "k": int(data.scale.k),
        "n_queries": len(data.workloads[workload_name]),
        "fault_rates": figure.x_values,
        "series": figure.series,
    }
