"""Experiment configuration: the scaled stand-in for the paper's setup.

The paper's experiments use a 5,017,298-descriptor collection, three
BAG/SR chunk-size classes (SMALL/MEDIUM/LARGE), 1,000-query DQ and SQ
workloads, and k = 30 throughout.  A pure-Python reproduction runs the same
pipeline at a reduced scale; :class:`ExperimentScale` pins every scaled
parameter so all benchmarks and EXPERIMENTS.md numbers come from one named,
seeded configuration.

Scaling rules (documented per Table/Figure in DESIGN.md):

* BAG thresholds are *fractions of the collection size*; the fractions are
  chosen so the resulting chunk-count ratios (SMALL : MEDIUM : LARGE
  ~ 1 : 0.5 : 0.35) and mean-chunk-size ratios (~1 : 2 : 3) bracket the
  paper's Table 1 ratios.
* SR-tree leaf capacities are derived at run time from the BAG results,
  exactly as the paper did ("chunks of uniform size roughly equal to the
  average size of the BAG clusters").
* k stays 30; query counts scale down from 1,000.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

from ..simio.calibration import PAPER_2005_COST_MODEL
from ..simio.cpu_model import CpuModel
from ..simio.pipeline import CostModel
from ..workloads.synthetic import SyntheticImageConfig

__all__ = [
    "ExperimentScale",
    "DEFAULT_SCALE",
    "TEST_SCALE",
    "SIZE_CLASSES",
    "PAPER_MEDIUM_CHUNK",
    "scaled_cost_model",
    "get_scale",
]

#: The paper's three chunk-size classes, smallest chunks first.
SIZE_CLASSES = ("SMALL", "MEDIUM", "LARGE")

#: Descriptors per MEDIUM chunk in the paper (Table 1) — the reference for
#: CPU-cost scaling below.
PAPER_MEDIUM_CHUNK = 1719


def scaled_cost_model(expected_medium_chunk: int) -> CostModel:
    """The calibrated 2005 cost model with CPU rescaled to a smaller data
    scale.

    A reproduction collection is ~200x smaller than the paper's, so chunks
    hold ~15-40x fewer descriptors while disk positioning costs do not
    shrink.  Charging the paper's 1.8 us per distance would therefore
    destroy the paper's per-chunk CPU : I/O balance (and with it every
    elapsed-time shape).  Scaling the per-distance cost by
    ``PAPER_MEDIUM_CHUNK / expected_medium_chunk`` keeps the CPU cost of a
    typical MEDIUM chunk at the paper's ~3.1 ms, preserving the
    dimensionless ratios the experiments measure: chunk CPU vs chunk I/O,
    giant-chunk stall vs per-chunk cost, and the CPU/IO crossover of the
    chunk-size sweep.  DESIGN.md records this substitution.
    """
    if expected_medium_chunk < 1:
        raise ValueError("expected chunk size must be positive")
    factor = PAPER_MEDIUM_CHUNK / float(expected_medium_chunk)
    base = PAPER_2005_COST_MODEL
    return dataclasses.replace(
        base,
        cpu=CpuModel(
            distance_time_s=base.cpu.distance_time_s * factor,
            chunk_overhead_s=base.cpu.chunk_overhead_s,
            ranking_time_per_chunk_s=base.cpu.ranking_time_per_chunk_s,
        ),
    )


@dataclasses.dataclass(frozen=True)
class ExperimentScale:
    """One complete, seeded experimental setup.

    Attributes
    ----------
    name:
        Registry key ("default", "test", ...).
    synthetic:
        Collection generator configuration.
    bag_threshold_fractions:
        BAG termination thresholds for (SMALL, MEDIUM, LARGE), as fractions
        of the collection size; descending chunk counts.
    mpi_factor:
        Factor handed to :func:`repro.chunking.estimate_mpi`.
    n_queries:
        Queries per workload (the paper uses 1,000).
    n_queries_sweep:
        Queries per workload for the 16-index chunk-size sweep of
        figures 6-7 (a prefix of the main workloads).
    k:
        Neighbors searched/evaluated (30 in the paper).
    cost_model:
        Simulated-hardware cost model for all timing.
    chunk_size_ladder:
        The Figure 6/7 sweep: SR-tree leaf capacities (the paper builds 16
        chunk indexes spanning three decades of chunk size).
    """

    name: str
    synthetic: SyntheticImageConfig
    bag_threshold_fractions: Tuple[float, float, float] = (0.11, 0.085, 0.065)
    mpi_factor: float = 0.5
    n_queries: int = 150
    n_queries_sweep: int = 60
    k: int = 30
    cost_model: CostModel = PAPER_2005_COST_MODEL
    chunk_size_ladder: Tuple[int, ...] = (
        16, 24, 36, 54, 81, 122, 182, 273, 410, 615, 922, 1383, 2074, 3112, 4668, 7002,
    )

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be positive")
        if self.n_queries < 1:
            raise ValueError("need at least one query")
        if not 1 <= self.n_queries_sweep <= self.n_queries:
            raise ValueError(
                "sweep query count must be in [1, n_queries] (the sweep uses "
                "a prefix of the main workloads)"
            )
        fr = self.bag_threshold_fractions
        if len(fr) != 3 or not all(0 < f < 1 for f in fr):
            raise ValueError("need three threshold fractions in (0, 1)")
        if not fr[0] > fr[1] > fr[2]:
            raise ValueError("threshold fractions must be strictly descending")
        if len(self.chunk_size_ladder) < 2 or any(
            s < 1 for s in self.chunk_size_ladder
        ):
            raise ValueError("chunk size ladder must hold positive sizes")

    def bag_thresholds(self, collection_size: int) -> Tuple[int, int, int]:
        """Absolute cluster-count thresholds for a given collection size,
        keyed SMALL/MEDIUM/LARGE (descending counts)."""
        thresholds = tuple(
            max(1, int(round(f * collection_size)))
            for f in self.bag_threshold_fractions
        )
        if not thresholds[0] > thresholds[1] > thresholds[2]:
            raise ValueError(
                f"collection of {collection_size} descriptors is too small for "
                f"distinct SMALL/MEDIUM/LARGE thresholds {thresholds}"
            )
        return thresholds


#: Full-size reproduction scale: ~24k descriptors, ~480 images.
DEFAULT_SCALE = ExperimentScale(
    name="default",
    synthetic=SyntheticImageConfig(
        n_images=480,
        mean_descriptors_per_image=50,
        n_patterns=500,
        patterns_per_image=6,
        pattern_popularity_exponent=0.9,
        pattern_std=0.05,
        pattern_scale_range=(-1.1, 0.0),
        clutter_fraction=0.04,
        halo_fraction=0.13,
        seed=42,
    ),
    bag_threshold_fractions=(0.097, 0.075, 0.053),
    n_queries=150,
    cost_model=scaled_cost_model(expected_medium_chunk=104),
)

#: Small scale for the test suite: ~3k descriptors, fast end to end.
TEST_SCALE = ExperimentScale(
    name="test",
    synthetic=SyntheticImageConfig(
        n_images=64,
        mean_descriptors_per_image=48,
        n_patterns=80,
        patterns_per_image=5,
        pattern_popularity_exponent=0.9,
        pattern_std=0.05,
        pattern_scale_range=(-1.1, 0.0),
        clutter_fraction=0.04,
        halo_fraction=0.10,
        seed=7,
    ),
    n_queries=25,
    n_queries_sweep=12,
    cost_model=scaled_cost_model(expected_medium_chunk=74),
    chunk_size_ladder=(16, 32, 64, 128, 256, 512),
)

_REGISTRY = {scale.name: scale for scale in (DEFAULT_SCALE, TEST_SCALE)}


def get_scale(name: str) -> ExperimentScale:
    """Look up a named scale ("default" or "test")."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scale {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
