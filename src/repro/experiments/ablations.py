"""Ablations over the design choices the paper calls out.

These are not paper figures; they probe the assumptions behind the paper's
conclusions (DESIGN.md section 5):

* :func:`run_overlap_ablation` — the uniform-chunks argument assumes I/O
  and CPU overlap; how much of SR's advantage survives a serial execution
  model?
* :func:`run_ranking_ablation` — the paper ranks chunks by centroid
  distance; does ranking by the lower bound ``d(centroid) - radius``
  change quality-per-chunk?
* :func:`run_stop_rule_ablation` — the paper's "second lesson": a time
  budget is a more natural stop rule than a chunk count.  Compare
  precision@30 under matched budgets.
* :func:`run_outlier_ablation` — BAG outlier removal vs the paper's
  norm-threshold alternative ("almost identical results").
* :func:`run_hybrid_ablation` — the conclusion's proposal (uniform size
  first, dissimilarity second) against both extremes.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

import numpy as np

from ..chunking.hybrid import HybridChunker
from ..chunking.outliers import apply_outlier_rows, norm_fraction_outliers
from ..chunking.srtree_chunker import SRTreeChunker
from ..core.batch_search import BatchChunkSearcher, BatchSearchResult
from ..core.chunk_index import build_chunk_index
from ..core.ground_truth import GroundTruthStore
from ..core.metrics import completion_stats, curves_from_traces, precision_at_k
from ..core.search import RANK_BY_LOWER_BOUND, ChunkSearcher
from ..core.stop_rules import MaxChunks, StopRule, TimeBudget
from ..simio.pipeline import CostModel
from .data import ExperimentData
from .results import TableResult


def _run_batch(
    index,
    data: ExperimentData,
    queries,
    truth: "GroundTruthStore | None" = None,
    stop_rule: "StopRule | None" = None,
    cost_model: "CostModel | None" = None,
) -> BatchSearchResult:
    """One batched workload run — the shared engine call of the ablations."""
    searcher = BatchChunkSearcher(
        index, cost_model=cost_model or data.scale.cost_model
    )
    truth_lists = (
        [truth.get(i) for i in range(queries.shape[0])] if truth is not None else None
    )
    return searcher.search_batch(
        queries, k=data.scale.k, stop_rule=stop_rule, true_neighbor_ids=truth_lists
    )

__all__ = [
    "run_overlap_ablation",
    "run_ranking_ablation",
    "run_stop_rule_ablation",
    "run_outlier_ablation",
    "run_hybrid_ablation",
    "run_cache_ablation",
    "run_chunker_zoo",
    "run_related_work_shootout",
    "run_approx_rules_ablation",
    "run_lessons_summary",
]


def _completion_traces_with(
    data: ExperimentData,
    family: str,
    size_class: str,
    workload_name: str,
    cost_model: CostModel,
    rank_by: str = "centroid",
):
    """Fresh completion traces under a non-default cost model or ranking."""
    built = data.built(family, size_class)
    truth = data.ground_truth(size_class, workload_name)
    workload = data.workloads[workload_name]
    searcher = BatchChunkSearcher(
        built.index, cost_model=cost_model, rank_by=rank_by
    )
    batch = searcher.search_batch(
        workload.queries,
        k=data.scale.k,
        true_neighbor_ids=[truth.get(i) for i in range(len(workload))],
    )
    return batch.traces()


def run_overlap_ablation(data: ExperimentData) -> TableResult:
    """Time to find 25 of 30 neighbors (DQ), with and without I/O-CPU
    overlap, for the MEDIUM indexes."""
    serial_model = dataclasses.replace(data.scale.cost_model, overlap_io_cpu=False)
    rows = []
    for family in ("BAG", "SR"):
        overlap_traces = data.completion_traces(family, "MEDIUM", "DQ")
        serial_traces = _completion_traces_with(
            data, family, "MEDIUM", "DQ", serial_model
        )
        overlap_curves = curves_from_traces(overlap_traces, data.scale.k)
        serial_curves = curves_from_traces(serial_traces, data.scale.k)
        target = min(25, data.scale.k)
        rows.append(
            [
                family,
                round(float(overlap_curves.elapsed_s[target]), 4),
                round(float(serial_curves.elapsed_s[target]), 4),
                round(float(completion_stats(overlap_traces).mean_elapsed_s), 4),
                round(float(completion_stats(serial_traces).mean_elapsed_s), 4),
            ]
        )
    return TableResult(
        experiment_id="ablation_overlap",
        title="I/O-CPU overlap ablation (MEDIUM indexes, DQ)",
        headers=[
            "Family",
            "t(25nn) overlap",
            "t(25nn) serial",
            "completion overlap",
            "completion serial",
        ],
        rows=rows,
        precision=4,
    )


def run_ranking_ablation(data: ExperimentData) -> TableResult:
    """Chunks needed for 25 of 30 neighbors under the two ranking rules."""
    rows = []
    for family in ("BAG", "SR"):
        centroid_traces = data.completion_traces(family, "MEDIUM", "DQ")
        bound_traces = _completion_traces_with(
            data, family, "MEDIUM", "DQ", data.scale.cost_model,
            rank_by=RANK_BY_LOWER_BOUND,
        )
        target = min(25, data.scale.k)
        centroid_chunks = curves_from_traces(centroid_traces, data.scale.k)
        bound_chunks = curves_from_traces(bound_traces, data.scale.k)
        rows.append(
            [
                family,
                round(float(centroid_chunks.chunks_read[target]), 2),
                round(float(bound_chunks.chunks_read[target]), 2),
                round(float(completion_stats(centroid_traces).mean_chunks_read), 1),
                round(float(completion_stats(bound_traces).mean_chunks_read), 1),
            ]
        )
    return TableResult(
        experiment_id="ablation_ranking",
        title="Chunk-ranking ablation (MEDIUM indexes, DQ): centroid vs lower bound",
        headers=[
            "Family",
            "chunks(25nn) centroid",
            "chunks(25nn) bound",
            "completion chunks centroid",
            "completion chunks bound",
        ],
        rows=rows,
    )


def run_stop_rule_ablation(data: ExperimentData) -> TableResult:
    """Precision@30 under a chunk-count stop vs a time-budget stop.

    The budget pairs are matched: the time budget is the mean time the
    chunk-count rule spent, so any precision difference comes from how the
    rules distribute effort across queries — the paper's point that
    variably sized chunks make chunk counts a poor proxy for time.
    """
    n_chunks_budget = 10
    rows = []
    for family in ("BAG", "SR"):
        built = data.built(family, "MEDIUM")
        truth = data.ground_truth("MEDIUM", "DQ")
        workload = data.workloads["DQ"]

        chunk_batch = _run_batch(
            built.index, data, workload.queries,
            stop_rule=MaxChunks(n_chunks_budget),
        )
        chunk_precisions: List[float] = [
            precision_at_k(r.neighbor_ids(), truth.get(i))
            for i, r in enumerate(chunk_batch)
        ]

        time_budget = float(chunk_batch.elapsed_s().mean())
        time_batch = _run_batch(
            built.index, data, workload.queries,
            stop_rule=TimeBudget(time_budget),
        )
        time_precisions: List[float] = [
            precision_at_k(r.neighbor_ids(), truth.get(i))
            for i, r in enumerate(time_batch)
        ]

        rows.append(
            [
                family,
                n_chunks_budget,
                round(float(np.mean(chunk_precisions)), 3),
                round(time_budget, 4),
                round(float(np.mean(time_precisions)), 3),
            ]
        )
    return TableResult(
        experiment_id="ablation_stoprule",
        title="Stop-rule ablation (MEDIUM indexes, DQ): chunk count vs time budget",
        headers=[
            "Family",
            "chunk budget",
            "precision@k (chunks)",
            "time budget (s)",
            "precision@k (time)",
        ],
        rows=rows,
        precision=3,
    )


def run_outlier_ablation(data: ExperimentData) -> TableResult:
    """BAG outlier removal vs the norm-threshold scheme, end to end.

    Builds an SR index over (a) the BAG-retained SMALL collection and
    (b) the collection with the same *fraction* of largest-norm
    descriptors removed, then compares chunks needed for 25 of 30
    neighbors on DQ.  The paper reports the two gave "almost identical
    results".
    """
    bag_small = data.built("BAG", "SMALL").chunking
    leaf = max(2, int(round(bag_small.mean_chunk_size)))
    workload = data.workloads["DQ"]
    target = min(25, data.scale.k)

    rows = []
    variants = {
        "BAG outliers": bag_small.retained,
        "norm threshold": apply_outlier_rows(
            data.collection,
            norm_fraction_outliers(data.collection, bag_small.outlier_fraction),
        ),
    }
    for name, retained in variants.items():
        chunking = SRTreeChunker(leaf).form_chunks(retained)
        index = build_chunk_index(
            chunking.retained, chunking.chunk_set, name=f"SR/{name}"
        )
        truth = GroundTruthStore.compute(retained, workload.queries, data.scale.k)
        traces = _run_batch(index, data, workload.queries, truth=truth).traces()
        curves = curves_from_traces(traces, data.scale.k)
        rows.append(
            [
                name,
                len(retained),
                round(float(curves.chunks_read[target]), 2),
                round(float(curves.elapsed_s[target]), 4),
                round(float(completion_stats(traces).mean_elapsed_s), 4),
            ]
        )
    return TableResult(
        experiment_id="ablation_outliers",
        title="Outlier-removal ablation (SR over SMALL class, DQ)",
        headers=[
            "Scheme",
            "retained",
            "chunks(25nn)",
            "t(25nn) s",
            "completion s",
        ],
        rows=rows,
        precision=4,
    )


def run_hybrid_ablation(data: ExperimentData) -> TableResult:
    """The paper's proposed hybrid (balanced k-means) vs both extremes.

    All three indexes cover the MEDIUM retained collection with the same
    target chunk size; compared on chunks and time to 25 of 30 neighbors
    (DQ) plus completion time.
    """
    bag_medium = data.built("BAG", "MEDIUM")
    retained = bag_medium.chunking.retained
    target_size = max(2, int(round(bag_medium.chunking.mean_chunk_size)))
    workload = data.workloads["DQ"]
    truth = data.ground_truth("MEDIUM", "DQ")
    target = min(25, data.scale.k)

    contenders = {
        "BAG/MEDIUM": None,  # reuse prepared index
        "SR/MEDIUM": None,
        "HYB/MEDIUM": HybridChunker(target_chunk_size=target_size, seed=9),
    }
    rows = []
    for label, chunker in contenders.items():
        if chunker is None:
            family = label.split("/")[0]
            traces = data.completion_traces(family, "MEDIUM", "DQ")
        else:
            chunking = chunker.form_chunks(retained)
            index = build_chunk_index(chunking.retained, chunking.chunk_set, name=label)
            traces = _run_batch(index, data, workload.queries, truth=truth).traces()
        curves = curves_from_traces(traces, data.scale.k)
        rows.append(
            [
                label,
                round(float(curves.chunks_read[target]), 2),
                round(float(curves.elapsed_s[target]), 4),
                round(float(completion_stats(traces).mean_elapsed_s), 4),
            ]
        )
    return TableResult(
        experiment_id="ablation_hybrid",
        title="Hybrid chunker vs the two extremes (MEDIUM class, DQ)",
        headers=["Index", "chunks(25nn)", "t(25nn) s", "completion s"],
        rows=rows,
        precision=4,
    )


def run_cache_ablation(data: ExperimentData) -> TableResult:
    """Buffer-cache effects: the paper's round-robin protocol, quantified.

    Runs the MEDIUM SR index's DQ workload under three protocols:

    * ``cold`` — no cache (the paper's intended measurement);
    * ``warm repeat`` — each query run twice back to back through a shared
      page cache, timing the second run (worst-case buffering bias);
    * ``round-robin`` — cache cleared between queries, modelling the
      eviction pressure of interleaving queries across six indexes.

    Expected: warm repeats look dramatically (and misleadingly) faster;
    round-robin matches cold — validating the paper's protocol.
    """
    import dataclasses as _dataclasses

    from ..simio.cache import LruPageCache

    built = data.built("SR", "MEDIUM")
    workload = data.workloads["DQ"]
    rows = []

    def mean_completion(cost_model, repeat=False, clear_between=False, cache=None):
        searcher = ChunkSearcher(built.index, cost_model=cost_model)
        times = []
        for query in workload.queries:
            if clear_between and cache is not None:
                cache.clear()
            if repeat:
                searcher.search(query, k=data.scale.k)  # warm the cache
            times.append(searcher.search(query, k=data.scale.k).elapsed_s)
        return float(np.mean(times))

    cold = mean_completion(data.scale.cost_model)
    rows.append(["cold (no cache)", round(cold, 4), "-"])

    warm_cache = LruPageCache(capacity_pages=1_000_000)
    warm_model = _dataclasses.replace(data.scale.cost_model, cache=warm_cache)
    warm = mean_completion(warm_model, repeat=True)
    rows.append(
        ["warm repeat", round(warm, 4), f"{warm_cache.hit_rate:.2f}"]
    )

    rr_cache = LruPageCache(capacity_pages=1_000_000)
    rr_model = _dataclasses.replace(data.scale.cost_model, cache=rr_cache)
    round_robin = mean_completion(
        rr_model, clear_between=True, cache=rr_cache
    )
    rows.append(
        ["round-robin (cleared)", round(round_robin, 4), f"{rr_cache.hit_rate:.2f}"]
    )

    return TableResult(
        experiment_id="ablation_cache",
        title="Buffer-cache ablation (SR/MEDIUM, DQ): completion time by protocol",
        headers=["Protocol", "mean completion s", "cache hit rate"],
        rows=rows,
        precision=4,
    )


def run_chunker_zoo(data: ExperimentData) -> TableResult:
    """Every chunk-forming strategy in the library on one playing field.

    Covers the paper's two contenders plus the related-work strategies
    (TSVQ, CF/Clindex), the proposal (hybrid) and the strawmen
    (round-robin, random), all over the MEDIUM retained collection at the
    MEDIUM target chunk size; DQ workload, run to completion.
    """
    from ..chunking.clindex import ClindexChunker
    from ..chunking.random_chunker import RandomChunker
    from ..chunking.round_robin import RoundRobinChunker
    from ..chunking.tsvq import TsvqChunker

    bag_medium = data.built("BAG", "MEDIUM")
    retained = bag_medium.chunking.retained
    target_size = max(2, int(round(bag_medium.chunking.mean_chunk_size)))
    n_chunks = max(1, len(retained) // target_size)
    workload = data.workloads["DQ"]
    truth = data.ground_truth("MEDIUM", "DQ")
    target = min(25, data.scale.k)

    contenders = {
        "BAG": None,
        "SR": None,
        "TSVQ": TsvqChunker(max_chunk_size=target_size, seed=4),
        "CF": ClindexChunker(max_chunk_size=target_size),
        "HYB": HybridChunker(target_chunk_size=target_size, seed=4),
        "RR": RoundRobinChunker(n_chunks=n_chunks),
        "RAND": RandomChunker(n_chunks=n_chunks, seed=4),
    }
    rows = []
    for name, chunker in contenders.items():
        if chunker is None:
            traces = data.completion_traces(name, "MEDIUM", "DQ")
            built = data.built(name, "MEDIUM")
            n, mean_size = built.index.n_chunks, built.chunking.mean_chunk_size
        else:
            chunking = chunker.form_chunks(retained)
            index = build_chunk_index(chunking.retained, chunking.chunk_set, name=name)
            n, mean_size = index.n_chunks, chunking.mean_chunk_size
            traces = _run_batch(index, data, workload.queries, truth=truth).traces()
        curves = curves_from_traces(traces, data.scale.k)
        rows.append(
            [
                name,
                n,
                round(mean_size),
                round(float(curves.chunks_read[target]), 2),
                round(float(curves.elapsed_s[target]), 4),
                round(float(completion_stats(traces).mean_elapsed_s), 4),
            ]
        )
    return TableResult(
        experiment_id="ablation_chunker_zoo",
        title="All chunk-forming strategies (MEDIUM class, DQ)",
        headers=[
            "Chunker", "chunks", "avg size",
            "chunks(25nn)", "t(25nn) s", "completion s",
        ],
        rows=rows,
        precision=4,
    )


def run_related_work_shootout(data: ExperimentData) -> TableResult:
    """The related-work search schemes against the chunk search.

    Every approximate-NN approach the paper's section 6 surveys, run on
    the MEDIUM retained collection with the DQ workload at k=10:

    * chunk search with a 5-chunk budget (the paper's paradigm),
    * Medrank (rank aggregation; no distance computations at query time),
    * approximate VA-file (bounded refinement),
    * P-Sphere tree (replication; one sphere scanned per query),
    * DBIN (EM bins with probabilistic abort).

    Columns report average recall@10 against exact ground truth plus each
    scheme's native work metric (descriptors or chunks touched).
    """
    from ..extensions.dbin import DbinIndex
    from ..extensions.medrank import MedrankIndex
    from ..extensions.psphere import PSphereTree
    from ..extensions.vafile import VAFile

    retained = data.built("BAG", "MEDIUM").chunking.retained
    workload = data.workloads["DQ"]
    k = 10
    n_queries = min(len(workload), 40)
    truth = GroundTruthStore.compute(
        retained, workload.queries[:n_queries], k
    )

    built = data.built("SR", "MEDIUM")
    searcher = ChunkSearcher(built.index, cost_model=data.scale.cost_model)
    chunk_budget = 5
    target_size = max(2, int(round(built.chunking.mean_chunk_size)))

    medrank = MedrankIndex(retained, n_lines=15, seed=1)
    vafile = VAFile(retained, bits_per_dimension=4)
    va_budget = chunk_budget * target_size
    psphere = PSphereTree(
        retained,
        n_spheres=max(2, len(retained) // target_size),
        points_per_sphere=3 * target_size,
        seed=1,
    )
    dbin = DbinIndex(retained, n_components=24, seed=1)

    def recall(ids, i):
        return precision_at_k(ids, truth.get(i))

    rows = []
    scores = {"chunk-search(5)": [], "medrank": [], "va-file": [],
              "p-sphere": [], "dbin": []}
    work = {"chunk-search(5)": [], "medrank": [], "va-file": [],
            "p-sphere": [], "dbin": []}
    for i in range(n_queries):
        query = workload.queries[i]
        result = searcher.search(query, k=k, stop_rule=MaxChunks(chunk_budget))
        scores["chunk-search(5)"].append(recall(result.neighbor_ids(), i))
        work["chunk-search(5)"].append(result.trace.descriptors_scanned)

        scores["medrank"].append(recall(medrank.search(query, k=k), i))
        work["medrank"].append(0)  # rank aggregation: no distance scans

        scores["va-file"].append(
            recall(vafile.search(query, k=k, refine_candidates=va_budget), i)
        )
        work["va-file"].append(va_budget)

        scores["p-sphere"].append(recall(psphere.search(query, k=k), i))
        work["p-sphere"].append(psphere.descriptors_scanned_per_query())

        ids, bins = dbin.search(query, k=k, abort_threshold=0.5)
        scores["dbin"].append(recall(ids, i))
        work["dbin"].append(int(np.sum(dbin.bin_sizes()[:bins])))

    for name in scores:
        rows.append(
            [
                name,
                round(float(np.mean(scores[name])), 3),
                round(float(np.mean(work[name]))),
            ]
        )
    return TableResult(
        experiment_id="ablation_related_work",
        title=f"Related-work shootout (MEDIUM retained, DQ, k={k})",
        headers=["Scheme", "recall@10", "avg descriptors scanned"],
        rows=rows,
        precision=3,
    )


def run_approx_rules_ablation(data: ExperimentData) -> TableResult:
    """Error-bounded stop rules (AC-NN / PAC-NN) vs fixed-effort rules.

    All rules run on the BAG/MEDIUM index (tight radii make the epsilon
    relaxation bite) over the DQ workload, reporting mean chunks, mean
    simulated time and precision@k.  Expected: epsilon trades a bounded,
    small precision loss for completion-time savings; PAC saves more by
    accepting a small miss probability.
    """
    from ..core.approx_rules import EpsilonApproximation, PacApproximation
    from ..core.stop_rules import ExactCompletion

    built = data.built("BAG", "MEDIUM")
    retained = built.chunking.retained
    truth = data.ground_truth("MEDIUM", "DQ")
    workload = data.workloads["DQ"]
    k = data.scale.k

    rules = {
        "exact": ExactCompletion(),
        "epsilon=0.1": EpsilonApproximation(0.1, k),
        "epsilon=0.5": EpsilonApproximation(0.5, k),
        "PAC(0.2,0.05)": PacApproximation.for_index(
            built.index, retained, epsilon=0.2, delta=0.05
        ),
        "PAC(0.2,0.25)": PacApproximation.for_index(
            built.index, retained, epsilon=0.2, delta=0.25
        ),
        "max-chunks(10)": MaxChunks(10),
    }
    rows = []
    for name, rule in rules.items():
        batch = _run_batch(built.index, data, workload.queries, stop_rule=rule)
        precisions = [
            precision_at_k(r.neighbor_ids(), truth.get(i))
            for i, r in enumerate(batch)
        ]
        rows.append(
            [
                name,
                round(float(np.mean([r.chunks_read for r in batch])), 1),
                round(float(batch.elapsed_s().mean()), 4),
                round(float(np.mean(precisions)), 3),
            ]
        )
    return TableResult(
        experiment_id="ablation_approx_rules",
        title="Error-bounded vs fixed-effort stop rules (BAG/MEDIUM, DQ)",
        headers=["Rule", "mean chunks", "mean time s", "precision@k"],
        rows=rows,
        precision=4,
    )


def run_lessons_summary(data: ExperimentData) -> TableResult:
    """Section 5.7's first lesson, quantified per index.

    "Relaxing the requirements for precise answers may yield significant
    improvements in response time.  In our experiments, most of the 30
    nearest neighbors were found in the first 1-2 seconds, while
    guaranteeing a correct result took between 16 and 45 seconds."

    For every index and workload: the time to reach 90 % of the true
    neighbors (27 of 30), the time to provable completion, and their
    ratio — the headline payoff of approximate search.
    """
    from .config import SIZE_CLASSES
    from .data import FAMILIES

    k = data.scale.k
    near_target = max(1, int(round(0.9 * k)))
    rows = []
    for family in FAMILIES:
        for size_class in SIZE_CLASSES:
            for workload_name in ("DQ", "SQ"):
                traces = data.completion_traces(family, size_class, workload_name)
                curves = curves_from_traces(traces, k)
                t_near = float(curves.elapsed_s[near_target])
                t_done = float(completion_stats(traces).mean_elapsed_s)
                rows.append(
                    [
                        f"{family}/{size_class}",
                        workload_name,
                        round(t_near, 4),
                        round(t_done, 4),
                        round(t_done / t_near, 1) if t_near > 0 else float("inf"),
                    ]
                )
    return TableResult(
        experiment_id="lessons_summary",
        title=(
            f"Lesson 1 quantified: time to {near_target}/{k} true neighbors "
            "vs time to the exactness guarantee"
        ),
        headers=["Index", "Workload", "t(90% quality) s", "t(guarantee) s", "ratio"],
        rows=rows,
        precision=4,
    )
