"""Sweep checkpointing: resume interrupted experiments point by point.

The sweep drivers (fault rates, chunk-size ladders, service load grids)
are embarrassingly resumable: each point is a pure function of the sweep
configuration, so a killed run loses nothing but the points it had not
yet finished.  :class:`SweepCheckpoint` makes that concrete — after each
completed point the driver stores the point's (JSON-serializable) value
under a stable key, published through
:func:`~repro.storage.atomic.atomic_output` so a crash mid-write can
never corrupt the file; on rerun, completed points are returned from the
checkpoint instead of being recomputed.

A checkpoint is only valid for the exact sweep that wrote it, so the
file embeds the sweep's ``meta`` (scale, index, workload, seed, ...).
Opening a checkpoint whose meta does not match starts empty: the stale
points belong to a different experiment and the first :meth:`put`
replaces the file wholesale.  Values pass through a JSON round-trip on
:meth:`put`, so a resumed run sees bit-identical numbers to a fresh one
— float precision is never silently laundered through the cache.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional, Union

from ..storage.atomic import atomic_output

__all__ = ["SweepCheckpoint"]

PathLike = Union[str, os.PathLike]

_FORMAT = "repro-sweep-checkpoint-v1"


class SweepCheckpoint:
    """Point-by-point resume state for one sweep run.

    Parameters
    ----------
    path:
        Checkpoint file location (created on the first :meth:`put`).
    meta:
        JSON-serializable identity of the sweep — everything that
        determines its output (experiment name, scale, index, workload,
        seed, grid, ...).  An existing file with different meta is
        ignored, not merged.
    """

    def __init__(self, path: PathLike, meta: Dict[str, object]):
        self.path = os.fspath(path)
        # Round-trip the meta through JSON so comparison happens in the
        # serialized domain (tuples become lists, ints stay ints).
        self.meta: Dict[str, object] = json.loads(json.dumps(meta, sort_keys=True))
        self._points: Dict[str, object] = {}
        self.resumed_points = 0
        if os.path.exists(self.path):
            with open(self.path, "r", encoding="utf-8") as stream:
                stored = json.load(stream)
            if (
                isinstance(stored, dict)
                and stored.get("format") == _FORMAT
                and stored.get("meta") == self.meta
            ):
                self._points = dict(stored["points"])
                self.resumed_points = len(self._points)

    def __contains__(self, key: str) -> bool:
        return key in self._points

    def __len__(self) -> int:
        return len(self._points)

    def get(self, key: str) -> Optional[object]:
        """The stored value for ``key`` (None when not yet computed)."""
        return self._points.get(key)

    def put(self, key: str, value: object) -> None:
        """Store one completed point and publish the file atomically.

        ``value`` is immediately round-tripped through JSON, so what the
        caller continues computing with is exactly what a resumed run
        would read back.
        """
        self._points[key] = json.loads(json.dumps(value))
        payload = {
            "format": _FORMAT,
            "meta": self.meta,
            "points": self._points,
        }
        encoded = json.dumps(payload, sort_keys=True, indent=2).encode("utf-8")
        with atomic_output(self.path) as stream:
            stream.write(encoded)
