"""Service simulation sweep: SLOs vs offered load vs fault rate.

The paper's quality/time trade-off is measured one query at a time; this
driver measures what the trade-off buys a *service*: a grid of
``(fault rate x offered load)`` runs of the resilient query service
(:class:`~repro.service.simulator.QueryService`), each reporting the
latency percentiles, shed/degraded/deadline fractions and mean recall
proxy of the full open-loop run.

Loads are expressed as multiples of the pool's calibrated capacity — the
measured mean fault-free completion time ``T`` gives a capacity of
``n_workers / T`` queries per second, so a load factor of 2.0 offers
twice what exact search could sustain — which keeps the sweep meaningful
at any experiment scale.  The relative deadline and the controller's p99
target are the same ``T`` scaled by fixed factors.

Every run is a pure function of ``(scale, grid, seed)``; two sweeps with
the same arguments emit byte-identical JSON reports (the CI smoke job
asserts this, mirroring the fault-injection smoke).
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.batch_search import BatchChunkSearcher
from ..faults.injector import FaultInjector
from ..faults.plan import FaultPlan
from ..service import QueryService, ServiceConfig
from ..simio.chunk_cache import LruChunkCache
from .checkpoint import SweepCheckpoint
from .data import ExperimentData
from .report import format_table

__all__ = [
    "run",
    "sweep",
    "ServesimResult",
    "DEFAULT_LOAD_FACTORS",
    "DEFAULT_FAULT_RATES",
    "DEFAULT_SEED",
    "DEADLINE_FACTOR",
    "TARGET_FACTOR",
]

#: Offered load as multiples of the pool's calibrated exact-search
#: capacity: below saturation, at it, and far beyond it.
DEFAULT_LOAD_FACTORS: Tuple[float, ...] = (0.5, 1.0, 2.0, 4.0, 8.0)

#: Fault rates crossed with the load axis (0 isolates pure overload).
DEFAULT_FAULT_RATES: Tuple[float, ...] = (0.0, 0.1)

#: Root seed (the paper's publication year, as in the fault sweep).
DEFAULT_SEED = 2005

#: Relative deadline as a multiple of the mean exact completion time.
DEADLINE_FACTOR = 4.0

#: Controller p99 target as a multiple of the mean exact completion time.
TARGET_FACTOR = 3.0

#: The per-cell metrics, in report order.
_COLUMNS = (
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "shed_fraction",
    "deadline_fraction",
    "degraded_fraction",
    "ok_fraction",
    "mean_recall",
    "final_budget",
    "breaker_opens",
    "breaker_half_opens",
    "breaker_closes",
    "utilization",
)


@dataclasses.dataclass
class ServesimResult:
    """The grid of service runs, as data.

    ``rows[i]`` holds one ``(fault_rate, load_factor)`` cell: the cell
    coordinates plus the :data:`_COLUMNS` metrics.  ``meta`` pins the
    calibration (mean service time, capacity, deadline, target) shared
    by every cell.
    """

    experiment_id: str
    title: str
    meta: Dict[str, object]
    rows: List[Dict[str, object]]

    def render(self) -> str:
        headers = ["fault_rate", "load"] + list(_COLUMNS)
        cells = [
            [row["fault_rate"], row["load_factor"]]
            + [row[column] for column in _COLUMNS]
            for row in self.rows
        ]
        calibration = (
            "calibration: mean exact completion "
            f"{float(self.meta['mean_service_s']) * 1000.0:.2f} ms, "
            f"capacity {float(self.meta['capacity_qps']):.2f} qps, "
            f"deadline {float(self.meta['deadline_s']) * 1000.0:.2f} ms, "
            f"p99 target {float(self.meta['target_p99_s']) * 1000.0:.2f} ms"
        )
        table = format_table(
            headers,
            cells,
            title=f"[{self.experiment_id}] {self.title}",
            precision=3,
        )
        return f"{table}\n{calibration}"

    def to_report(self) -> Dict[str, object]:
        """Deterministic JSON-ready dict (the CI smoke artefact)."""
        return {
            "experiment": self.experiment_id,
            "meta": self.meta,
            "rows": self.rows,
        }


def _calibrate(
    searcher: BatchChunkSearcher, data: ExperimentData, workload_name: str
) -> float:
    """Mean exact (fault-free) completion seconds over the workload."""
    batch = searcher.search_batch(
        data.workloads[workload_name].queries, k=data.scale.k
    )
    return batch.mean_elapsed_s


def sweep(
    data: ExperimentData,
    family: str = "SR",
    size_class: str = "SMALL",
    workload_name: str = "DQ",
    load_factors: Sequence[float] = DEFAULT_LOAD_FACTORS,
    fault_rates: Sequence[float] = DEFAULT_FAULT_RATES,
    seed: int = DEFAULT_SEED,
    n_workers: int = 4,
    checkpoint_path: Optional[Union[str, os.PathLike]] = None,
    cache_mb: Optional[float] = None,
) -> ServesimResult:
    """Run the service grid; one cell per ``(fault rate, load factor)``.

    ``checkpoint_path`` enables point-by-point resume exactly as in the
    fault sweep: each finished cell (and the calibration run) is
    published atomically and skipped on rerun.

    ``cache_mb`` enables the simulated cross-query chunk cache shared by
    the pool's workers: each cell (and the calibration run) gets a
    *fresh* cache of that capacity, so every cell stays a pure function
    of its own coordinates — no warm-up leaks across cells — and the
    report remains byte-identical across reruns.  Cells then additionally
    record the cache's hit rate.
    """
    if not load_factors or not fault_rates:
        raise ValueError("need at least one load factor and one fault rate")
    if any(not load > 0.0 for load in load_factors):
        raise ValueError("load factors must be positive")
    if cache_mb is not None and not cache_mb > 0.0:
        raise ValueError("cache size must be positive megabytes (or None)")
    checkpoint = None
    if checkpoint_path is not None:
        checkpoint = SweepCheckpoint(
            checkpoint_path,
            meta={
                "experiment": "servesim",
                "scale": data.scale.name,
                "family": family,
                "size_class": size_class,
                "workload": workload_name,
                "seed": int(seed),
                "k": int(data.scale.k),
                "n_workers": int(n_workers),
                "n_queries": len(data.workloads[workload_name]),
                "cache_mb": float(cache_mb) if cache_mb is not None else None,
            },
        )
    built = data.built(family, size_class)
    workload = data.workloads[workload_name]
    truth = data.ground_truth(size_class, workload_name)
    truth_lists: List[Optional[Sequence[int]]] = [
        truth.get(i) for i in range(len(workload))
    ]

    def fresh_searcher() -> "Tuple[BatchChunkSearcher, Optional[LruChunkCache]]":
        """A searcher over the built index; with ``cache_mb`` set it gets
        its own chunk cache so each run's warm-up is self-contained."""
        if cache_mb is None:
            return (
                BatchChunkSearcher(built.index, cost_model=data.scale.cost_model),
                None,
            )
        cache = LruChunkCache(
            capacity_bytes=int(float(cache_mb) * (1 << 20)), seed=int(seed)
        )
        cost_model = dataclasses.replace(
            data.scale.cost_model, chunk_cache=cache
        )
        return BatchChunkSearcher(built.index, cost_model=cost_model), cache

    searcher, _ = fresh_searcher()

    baseline = checkpoint.get("baseline") if checkpoint is not None else None
    if baseline is None:
        baseline = _calibrate(searcher, data, workload_name)
        if checkpoint is not None:
            checkpoint.put("baseline", baseline)
            baseline = checkpoint.get("baseline")
    mean_service_s = float(baseline)  # type: ignore[arg-type]
    capacity_qps = n_workers / mean_service_s
    deadline_s = DEADLINE_FACTOR * mean_service_s
    target_p99_s = TARGET_FACTOR * mean_service_s

    rows: List[Dict[str, object]] = []
    for fault_rate in fault_rates:
        for load in load_factors:
            key = f"fault={float(fault_rate):g}/load={float(load):g}"
            cell = checkpoint.get(key) if checkpoint is not None else None
            if cell is None:
                config = ServiceConfig(
                    n_workers=n_workers,
                    deadline_s=deadline_s,
                    target_p99_s=target_p99_s,
                    arrival_rate_qps=float(load) * capacity_qps,
                    seed=seed,
                    k=data.scale.k,
                    initial_service_estimate_s=mean_service_s,
                    # Admit only what is predicted to finish within the
                    # *target*, not the deadline — aligning the admission
                    # horizon with the controller's goal.
                    shed_slack=TARGET_FACTOR / DEADLINE_FACTOR,
                )
                faults = None
                if fault_rate > 0.0:
                    plan = FaultPlan.balanced(float(fault_rate), seed=seed)
                    faults = FaultInjector.from_cost_model(
                        plan, data.scale.cost_model
                    )
                # A fresh cache per cell: the cell's result must be a pure
                # function of its coordinates, not of which cells (or the
                # calibration run) happened to execute before it — that is
                # what keeps checkpoint resume byte-identical.
                cell_searcher, cell_cache = (
                    (searcher, None) if cache_mb is None else fresh_searcher()
                )
                service = QueryService(
                    cell_searcher, config, faults=faults,
                    true_neighbor_ids=truth_lists,
                )
                result = service.run(workload.queries)
                stats = result.stats
                cell = {
                    "fault_rate": float(fault_rate),
                    "load_factor": float(load),
                    "p50_ms": stats.p50_s * 1000.0,
                    "p95_ms": stats.p95_s * 1000.0,
                    "p99_ms": stats.p99_s * 1000.0,
                    "shed_fraction": stats.shed_fraction,
                    "deadline_fraction": stats.deadline_fraction,
                    "degraded_fraction": stats.degraded_fraction,
                    "ok_fraction": stats.ok_fraction,
                    "mean_recall": stats.mean_recall,
                    "final_budget": result.final_budget,
                    "breaker_opens": result.breaker_opens,
                    "breaker_half_opens": result.breaker_transitions["half_opened"],
                    "breaker_closes": result.breaker_transitions["closed"],
                    "utilization": result.utilization,
                }
                if cell_cache is not None:
                    cell["cache_hit_rate"] = cell_cache.hit_rate
                if checkpoint is not None:
                    checkpoint.put(key, cell)
                    cell = checkpoint.get(key)
            rows.append(dict(cell))  # type: ignore[call-overload]

    return ServesimResult(
        experiment_id="servesim",
        title=(
            f"Service SLOs vs load and fault rate — {family}/{size_class}, "
            f"{workload_name} workload, {n_workers} workers, seed {seed}"
        ),
        meta={
            "scale": data.scale.name,
            "family": family,
            "size_class": size_class,
            "workload": workload_name,
            "seed": int(seed),
            "k": int(data.scale.k),
            "n_workers": int(n_workers),
            "n_queries": len(workload),
            "mean_service_s": mean_service_s,
            "capacity_qps": capacity_qps,
            "deadline_s": deadline_s,
            "target_p99_s": target_p99_s,
            "load_factors": [float(load) for load in load_factors],
            "fault_rates": [float(rate) for rate in fault_rates],
            "cache_mb": float(cache_mb) if cache_mb is not None else None,
        },
        rows=rows,
    )


def run(data: ExperimentData) -> ServesimResult:
    """Default grid (``repro experiment servesim``)."""
    return sweep(data)
