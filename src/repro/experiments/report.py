"""Plain-text rendering of experiment results.

Every experiment driver returns a result object whose ``render()`` emits
the same rows/series the paper's table or figure reports, as fixed-width
text.  Benchmarks print these, and EXPERIMENTS.md embeds them.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["format_table", "format_series_block"]


def _cell(value, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str = "",
    precision: int = 2,
) -> str:
    """Fixed-width table with right-aligned numeric columns."""
    rendered = [[_cell(v, precision) for v in row] for row in rows]
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in rendered)) if rendered else len(headers[c])
        for c in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(widths[c]) for c, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[c] for c in range(len(headers))))
    for row in rendered:
        lines.append("  ".join(row[c].rjust(widths[c]) for c in range(len(headers))))
    return "\n".join(lines)


def format_series_block(
    x_label: str,
    x_values: Sequence,
    series: Dict[str, Sequence],
    title: str = "",
    precision: int = 3,
) -> str:
    """A figure as a table: one x column plus one column per plotted series."""
    headers = [x_label] + list(series)
    rows = [
        [x] + [series[name][i] for name in series]
        for i, x in enumerate(x_values)
    ]
    return format_table(headers, rows, title=title, precision=precision)
