"""ASCII rendering of figure results.

The reproduction environment has no plotting stack, so figures can be
*seen* directly in the terminal: each series is drawn with its own marker
on a character grid, with optional log scaling on either axis (Figure 1 is
log-y, Figures 6-7 log-x, matching the paper's axes).

This is intentionally simple — one marker per series, nearest-cell
rasterization — but it makes the crossovers and valleys of figures 2-7
visible without leaving the shell.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from .results import FigureResult

__all__ = ["plot_figure", "SERIES_MARKERS"]

#: Markers assigned to series in order.
SERIES_MARKERS = "ox+*#@%&"


def _transform(values: Sequence[float], log: bool) -> List[float]:
    out = []
    for value in values:
        v = float(value)
        if log:
            v = math.log10(v) if v > 0 else math.nan
        out.append(v)
    return out


def _scale(v: float, lo: float, hi: float, cells: int) -> int:
    if hi <= lo:
        return 0
    position = (v - lo) / (hi - lo)
    return min(cells - 1, max(0, int(round(position * (cells - 1)))))


def plot_figure(
    figure: FigureResult,
    width: int = 64,
    height: int = 20,
    log_x: bool = False,
    log_y: bool = False,
) -> str:
    """Render a :class:`FigureResult` as an ASCII chart.

    Non-positive values are skipped when the corresponding axis is
    logarithmic.  Returns the chart plus a marker legend.
    """
    if width < 8 or height < 4:
        raise ValueError("chart needs at least 8x4 cells")
    if len(figure.series) > len(SERIES_MARKERS):
        raise ValueError(
            f"too many series to plot ({len(figure.series)} > "
            f"{len(SERIES_MARKERS)} markers)"
        )

    xs = _transform(figure.x_values, log_x)
    all_ys: List[float] = []
    series_ys = {}
    for name, values in figure.series.items():
        ys = _transform(values, log_y)
        series_ys[name] = ys
        all_ys.extend(y for y in ys if not math.isnan(y))
    finite_xs = [x for x in xs if not math.isnan(x)]
    if not finite_xs or not all_ys:
        raise ValueError("nothing plottable (all values filtered by log axes)")

    x_lo, x_hi = min(finite_xs), max(finite_xs)
    y_lo, y_hi = min(all_ys), max(all_ys)

    grid = [[" "] * width for _ in range(height)]
    for marker, (name, ys) in zip(SERIES_MARKERS, series_ys.items()):
        for x, y in zip(xs, ys):
            if math.isnan(x) or math.isnan(y):
                continue
            col = _scale(x, x_lo, x_hi, width)
            row = height - 1 - _scale(y, y_lo, y_hi, height)
            grid[row][col] = marker

    def fmt(value: float, log: bool) -> str:
        return f"{10 ** value:.4g}" if log else f"{value:.4g}"

    lines = [f"[{figure.experiment_id}] {figure.title}"]
    lines.append(f"y: {fmt(y_hi, log_y)}" + (" (log)" if log_y else ""))
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    x_axis = (
        f" x: {fmt(x_lo, log_x)} .. {fmt(x_hi, log_x)}  ({figure.x_label}"
        + (", log)" if log_x else ")")
    )
    lines.append(f"y: {fmt(y_lo, log_y)}" + x_axis)
    legend = "  ".join(
        f"{marker}={name}"
        for marker, name in zip(SERIES_MARKERS, figure.series)
    )
    lines.append(legend)
    return "\n".join(lines)
