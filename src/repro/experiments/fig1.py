"""Figure 1 — sizes of the 30 largest chunks of each index (log scale).

Expected shape (paper): the BAG curves start 2-3 orders of magnitude above
their averages (largest chunks of 0.5-1 M descriptors out of ~4.5 M) and
fall steeply; the SR curves are flat at the uniform leaf size.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from .config import SIZE_CLASSES
from .data import FAMILIES, ExperimentData
from .results import FigureResult

__all__ = ["run", "N_LARGEST"]

#: The paper plots the 30 largest chunks.
N_LARGEST = 30


def run(data: ExperimentData) -> FigureResult:
    series: Dict[str, List[float]] = {}
    for family in FAMILIES:
        for size_class in SIZE_CLASSES:
            built = data.built(family, size_class)
            largest = built.chunking.chunk_set.largest_sizes(N_LARGEST)
            padded = np.zeros(N_LARGEST, dtype=np.float64)
            padded[: largest.shape[0]] = largest
            series[built.label] = [float(v) for v in padded]
    return FigureResult(
        experiment_id="fig1",
        title="Size of the largest chunks (descriptors)",
        x_label="chunk rank",
        x_values=list(range(1, N_LARGEST + 1)),
        series=series,
        precision=0,
    )
