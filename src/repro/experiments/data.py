"""Experiment data preparation: the six chunk indexes and workloads.

The paper's pipeline (section 5.2):

1. cluster the collection with BAG, yielding SMALL/MEDIUM/LARGE chunk
   indexes in succession from one run;
2. remove the outliers BAG identified;
3. build SR-tree chunk indexes of uniform size "roughly equal to the
   average size of the BAG clusters" over the retained descriptors —
   which is why Table 1 shows one Retained/Discarded column per size
   class, shared by BAG and SR.

:func:`prepare` runs that pipeline at a given
:class:`~repro.experiments.config.ExperimentScale` and packages everything
the per-figure drivers need, including lazily computed, cached
run-to-completion traces (the paper always runs queries to conclusion and
derives every metric from the per-chunk logs).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from ..chunking.bag import BagClusterer, estimate_mpi
from ..chunking.base import ChunkingResult
from ..chunking.srtree_chunker import SRTreeChunker
from ..core.batch_search import BatchChunkSearcher
from ..core.chunk_index import ChunkIndex, build_chunk_index
from ..core.dataset import DescriptorCollection
from ..core.ground_truth import GroundTruthStore
from ..core.trace import SearchTrace
from ..workloads.queries import Workload, dataset_queries, space_queries
from ..workloads.synthetic import generate_collection
from .config import SIZE_CLASSES, ExperimentScale

__all__ = ["BuiltIndex", "ExperimentData", "prepare", "clear_cache"]

#: The two chunk-forming families under comparison.
FAMILIES = ("BAG", "SR")


@dataclasses.dataclass
class BuiltIndex:
    """One of the six (family x size-class) chunk indexes."""

    family: str
    size_class: str
    chunking: ChunkingResult
    index: ChunkIndex

    @property
    def label(self) -> str:
        return f"{self.family}/{self.size_class}"


class ExperimentData:
    """Everything the experiment drivers consume, with trace caching."""

    def __init__(
        self,
        scale: ExperimentScale,
        collection: DescriptorCollection,
        mpi: float,
        indexes: Dict[Tuple[str, str], BuiltIndex],
        workloads: Dict[str, Workload],
        ground_truths: Dict[Tuple[str, str], GroundTruthStore],
    ):
        self.scale = scale
        self.collection = collection
        self.mpi = mpi
        self.indexes = indexes
        self.workloads = workloads
        self.ground_truths = ground_truths
        self._trace_cache: Dict[Tuple[str, str, str], List[SearchTrace]] = {}

    # -- access helpers ------------------------------------------------------

    def built(self, family: str, size_class: str) -> BuiltIndex:
        return self.indexes[(family, size_class)]

    def retained(self, size_class: str) -> DescriptorCollection:
        """The post-outlier-removal collection shared by both families."""
        return self.built("BAG", size_class).chunking.retained

    def ground_truth(self, size_class: str, workload_name: str) -> GroundTruthStore:
        return self.ground_truths[(size_class, workload_name)]

    # -- traces ----------------------------------------------------------------

    def completion_traces(
        self, family: str, size_class: str, workload_name: str
    ) -> List[SearchTrace]:
        """Run-to-completion traces for one index/workload pair (cached).

        Every trace carries per-chunk true-match counts, so figures 2-5 and
        Table 2 all derive from this one set of runs — exactly how the
        paper gathered its metrics ("these metrics were logged after the
        processing of every chunk ... we always ran queries to conclusion").
        """
        key = (family, size_class, workload_name)
        if key not in self._trace_cache:
            built = self.built(family, size_class)
            workload = self.workloads[workload_name]
            truth = self.ground_truth(size_class, workload_name)
            searcher = BatchChunkSearcher(
                built.index, cost_model=self.scale.cost_model
            )
            batch = searcher.search_batch(
                workload.queries,
                k=self.scale.k,
                true_neighbor_ids=[truth.get(i) for i in range(len(workload))],
            )
            self._trace_cache[key] = batch.traces()
        return self._trace_cache[key]


def _build_six_indexes(
    scale: ExperimentScale,
    collection: DescriptorCollection,
    mpi: float,
) -> Dict[Tuple[str, str], BuiltIndex]:
    thresholds = scale.bag_thresholds(len(collection))
    clusterer = BagClusterer(
        mpi=mpi,
        target_clusters=thresholds[-1],
        max_passes=400,
    )
    snapshots = clusterer.run_with_snapshots(collection, thresholds)
    by_threshold = {snap.threshold: snap for snap in snapshots}

    indexes: Dict[Tuple[str, str], BuiltIndex] = {}
    for size_class, threshold in zip(SIZE_CLASSES, thresholds):
        bag_result = clusterer.finalize(collection, by_threshold[threshold])
        bag_index = build_chunk_index(
            bag_result.retained, bag_result.chunk_set, name=f"BAG/{size_class}"
        )
        indexes[("BAG", size_class)] = BuiltIndex(
            "BAG", size_class, bag_result, bag_index
        )

        # SR-tree chunks of uniform size ~ the BAG average, over the same
        # retained (outlier-free) descriptors.
        leaf_capacity = max(2, int(round(bag_result.mean_chunk_size)))
        sr_result = SRTreeChunker(leaf_capacity).form_chunks(bag_result.retained)
        sr_index = build_chunk_index(
            sr_result.retained, sr_result.chunk_set, name=f"SR/{size_class}"
        )
        indexes[("SR", size_class)] = BuiltIndex(
            "SR", size_class, sr_result, sr_index
        )
    return indexes


def prepare(scale: ExperimentScale) -> ExperimentData:
    """Run the full data-preparation pipeline for one scale (cached)."""
    if scale.name in _CACHE:
        return _CACHE[scale.name]

    collection = generate_collection(scale.synthetic)
    mpi = estimate_mpi(collection, factor=scale.mpi_factor, seed=scale.synthetic.seed)
    indexes = _build_six_indexes(scale, collection, mpi)

    workloads = {
        "DQ": dataset_queries(collection, scale.n_queries, seed=101),
        "SQ": space_queries(collection, scale.n_queries, seed=202),
    }

    ground_truths: Dict[Tuple[str, str], GroundTruthStore] = {}
    for size_class in SIZE_CLASSES:
        retained = indexes[("BAG", size_class)].chunking.retained
        for workload_name, workload in workloads.items():
            ground_truths[(size_class, workload_name)] = GroundTruthStore.compute(
                retained, workload.queries, scale.k
            )

    data = ExperimentData(
        scale=scale,
        collection=collection,
        mpi=mpi,
        indexes=indexes,
        workloads=workloads,
        ground_truths=ground_truths,
    )
    _CACHE[scale.name] = data
    return data


_CACHE: Dict[str, ExperimentData] = {}


def clear_cache() -> None:
    """Drop all cached experiment data (tests use this for isolation)."""
    _CACHE.clear()
