"""Common result containers for experiment drivers."""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence

from .report import format_series_block, format_table

__all__ = ["FigureResult", "TableResult"]


@dataclasses.dataclass
class FigureResult:
    """A figure as data: shared x values plus one named series per curve.

    ``render()`` prints the figure as a fixed-width block with one column
    per series — the same numbers the paper plots.
    """

    experiment_id: str
    title: str
    x_label: str
    x_values: List
    series: Dict[str, List[float]]
    precision: int = 3

    def __post_init__(self) -> None:
        for name, values in self.series.items():
            if len(values) != len(self.x_values):
                raise ValueError(
                    f"series {name!r} has {len(values)} points for "
                    f"{len(self.x_values)} x values"
                )

    def render(self) -> str:
        return format_series_block(
            self.x_label,
            self.x_values,
            self.series,
            title=f"[{self.experiment_id}] {self.title}",
            precision=self.precision,
        )


@dataclasses.dataclass
class TableResult:
    """A table as data: headers plus rows of cells."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List]
    precision: int = 2

    def render(self) -> str:
        return format_table(
            self.headers,
            self.rows,
            title=f"[{self.experiment_id}] {self.title}",
            precision=self.precision,
        )
