"""Sharded-serving sweep: tail latency vs shard count vs fault rate.

The service sweep (:mod:`~repro.experiments.servesim`) shows one node
trading quality for tail latency; this driver shows a *cluster* buying
the tail down with parallelism — and paying for faults with honest
coverage instead of errors.  The grid crosses placement strategy x
shard count x fault rate at a fixed offered load expressed in multiples
of a **single node's** calibrated capacity (``1 / T`` for the measured
mean exact completion time ``T``), so "load 8" means eight times what
one worker could sustain and a cluster of ``n`` single-worker shards
saturates at load ``n``.

Per cell the sharded coordinator runs the whole open-loop workload and
reports latency percentiles, outcome fractions, the mean coverage
fraction, and the robustness counters (failovers, hedges, breaker
transitions).  Placement skew is visible through the plan's imbalance
column — on skewed chunkings (the BAG family) the cost-aware greedy
placement should beat round-robin's max-loaded shard, and with it the
scatter-gather p99.

Every run is a pure function of ``(scale, grid, seed)``; two sweeps with
the same arguments emit byte-identical JSON reports (the CI smoke job
``cmp``'s them, as for the fault and service sweeps).
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.batch_search import BatchChunkSearcher
from ..faults.shard_plan import ShardFaultPlan
from ..service.sharding import (
    PLACEMENT_STRATEGIES,
    ShardedQueryService,
    ShardServiceConfig,
    estimate_chunk_costs,
    plan_placement,
)
from .checkpoint import SweepCheckpoint
from .data import ExperimentData
from .report import format_table
from .servesim import DEADLINE_FACTOR, DEFAULT_SEED

__all__ = [
    "run",
    "sweep",
    "ShardsimResult",
    "DEFAULT_PLACEMENTS",
    "DEFAULT_SHARD_COUNTS",
    "DEFAULT_FAULT_RATES",
    "DEFAULT_LOAD_FACTOR",
    "HEDGE_FACTOR",
]

#: Placement strategies compared per cell: the cost-aware bin-pack vs
#: the cost-blind baseline the acceptance criterion measures against.
DEFAULT_PLACEMENTS: Tuple[str, ...] = ("greedy", "round_robin")

#: Shard-count axis; single-worker shards, so cluster capacity scales
#: with it and the default 8x load crosses saturation mid-axis.
DEFAULT_SHARD_COUNTS: Tuple[int, ...] = (4, 8, 16)

#: Fault rates crossed with the shard axis (0 isolates pure load).
DEFAULT_FAULT_RATES: Tuple[float, ...] = (0.0, 0.1)

#: Offered load in multiples of a single node's exact-search capacity.
DEFAULT_LOAD_FACTOR = 8.0

#: Hedge delay as a multiple of the expected per-shard sub-request time
#: (``T / n_shards``): late enough to spare the median, early enough to
#: matter for stragglers.
HEDGE_FACTOR = 3.0

#: The per-cell metrics, in report order.
_COLUMNS = (
    "imbalance",
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "shed_fraction",
    "deadline_fraction",
    "degraded_fraction",
    "ok_fraction",
    "mean_recall",
    "mean_coverage",
    "failovers",
    "hedges",
    "hedge_wins",
    "lost_partitions",
    "breaker_opens",
    "breaker_half_opens",
    "breaker_closes",
    "utilization",
)


@dataclasses.dataclass
class ShardsimResult:
    """The grid of sharded runs, as data.

    ``rows[i]`` holds one ``(placement, n_shards, fault_rate)`` cell: the
    cell coordinates plus the :data:`_COLUMNS` metrics.  ``meta`` pins
    the shared calibration (mean single-node service time, offered load,
    deadline) so a report is self-describing.
    """

    experiment_id: str
    title: str
    meta: Dict[str, object]
    rows: List[Dict[str, object]]

    def render(self) -> str:
        headers = ["placement", "shards", "fault_rate"] + list(_COLUMNS)
        cells = [
            [row["placement"], row["n_shards"], row["fault_rate"]]
            + [row[column] for column in _COLUMNS]
            for row in self.rows
        ]
        calibration = (
            "calibration: mean single-node exact completion "
            f"{float(self.meta['mean_service_s']) * 1000.0:.2f} ms, "
            f"offered load {float(self.meta['load_factor']):g}x "
            f"({float(self.meta['arrival_rate_qps']):.2f} qps), "
            f"deadline {float(self.meta['deadline_s']) * 1000.0:.2f} ms"
        )
        table = format_table(
            headers,
            cells,
            title=f"[{self.experiment_id}] {self.title}",
            precision=3,
        )
        return f"{table}\n{calibration}"

    def to_report(self) -> Dict[str, object]:
        """Deterministic JSON-ready dict (the CI smoke artefact)."""
        return {
            "experiment": self.experiment_id,
            "meta": self.meta,
            "rows": self.rows,
        }


def sweep(
    data: ExperimentData,
    family: str = "BAG",
    size_class: str = "SMALL",
    workload_name: str = "DQ",
    placements: Sequence[str] = DEFAULT_PLACEMENTS,
    shard_counts: Sequence[int] = DEFAULT_SHARD_COUNTS,
    fault_rates: Sequence[float] = DEFAULT_FAULT_RATES,
    load_factor: float = DEFAULT_LOAD_FACTOR,
    n_replicas: int = 2,
    workers_per_shard: int = 1,
    hedge_factor: float = HEDGE_FACTOR,
    seed: int = DEFAULT_SEED,
    checkpoint_path: Optional[Union[str, os.PathLike]] = None,
) -> ShardsimResult:
    """Run the sharded grid; one cell per ``(placement, shards, fault)``.

    The BAG family is the default on purpose: its chunk costs are
    skewed, which is precisely where cost-aware placement earns its
    keep.  ``hedge_factor <= 0`` disables hedging across the sweep.
    ``checkpoint_path`` enables point-by-point resume exactly as in the
    fault and service sweeps.
    """
    if not placements or not shard_counts or not fault_rates:
        raise ValueError(
            "need at least one placement, shard count and fault rate"
        )
    for placement in placements:
        if placement not in PLACEMENT_STRATEGIES:
            raise ValueError(
                f"unknown placement {placement!r}; "
                f"choose from {PLACEMENT_STRATEGIES}"
            )
    if any(count < 1 for count in shard_counts):
        raise ValueError("shard counts must be positive")
    if not load_factor > 0.0:
        raise ValueError("load factor must be positive")
    if n_replicas < 1:
        raise ValueError("replication factor must be positive")
    checkpoint = None
    if checkpoint_path is not None:
        checkpoint = SweepCheckpoint(
            checkpoint_path,
            meta={
                "experiment": "shardsim",
                "scale": data.scale.name,
                "family": family,
                "size_class": size_class,
                "workload": workload_name,
                "seed": int(seed),
                "k": int(data.scale.k),
                "n_replicas": int(n_replicas),
                "workers_per_shard": int(workers_per_shard),
                "load_factor": float(load_factor),
                "hedge_factor": float(hedge_factor),
                "n_queries": len(data.workloads[workload_name]),
            },
        )
    built = data.built(family, size_class)
    workload = data.workloads[workload_name]
    truth = data.ground_truth(size_class, workload_name)
    truth_lists: List[Optional[Sequence[int]]] = [
        truth.get(i) for i in range(len(workload))
    ]

    baseline = checkpoint.get("baseline") if checkpoint is not None else None
    if baseline is None:
        searcher = BatchChunkSearcher(
            built.index, cost_model=data.scale.cost_model
        )
        baseline = searcher.search_batch(
            workload.queries, k=data.scale.k
        ).mean_elapsed_s
        if checkpoint is not None:
            checkpoint.put("baseline", baseline)
            baseline = checkpoint.get("baseline")
    mean_service_s = float(baseline)  # type: ignore[arg-type]
    arrival_rate_qps = float(load_factor) / mean_service_s
    deadline_s = DEADLINE_FACTOR * mean_service_s
    costs = estimate_chunk_costs(built.index, data.scale.cost_model)

    rows: List[Dict[str, object]] = []
    for placement in placements:
        for n_shards in shard_counts:
            for fault_rate in fault_rates:
                key = (
                    f"placement={placement}/shards={int(n_shards)}"
                    f"/fault={float(fault_rate):g}"
                )
                cell = checkpoint.get(key) if checkpoint is not None else None
                if cell is None:
                    plan = plan_placement(
                        costs,
                        n_shards=int(n_shards),
                        n_replicas=min(int(n_replicas), int(n_shards)),
                        strategy=placement,
                        seed=seed,
                    )
                    hedge_delay_s = (
                        hedge_factor * mean_service_s / float(n_shards)
                        if hedge_factor > 0.0
                        else 0.0
                    )
                    config = ShardServiceConfig(
                        workers_per_shard=workers_per_shard,
                        deadline_s=deadline_s,
                        arrival_rate_qps=arrival_rate_qps,
                        seed=seed,
                        k=data.scale.k,
                        hedge_delay_s=hedge_delay_s,
                    )
                    faults = None
                    if fault_rate > 0.0:
                        # Horizon ~ the open-loop span plus slack, so
                        # outage windows can land anywhere in the run.
                        horizon_s = (
                            len(workload) / arrival_rate_qps + deadline_s
                        )
                        faults = ShardFaultPlan.balanced(
                            float(fault_rate), seed=seed, horizon_s=horizon_s
                        )
                    service = ShardedQueryService(
                        built.index,
                        plan,
                        config,
                        cost_model=data.scale.cost_model,
                        faults=faults,
                        true_neighbor_ids=truth_lists,
                    )
                    result = service.run(workload.queries)
                    stats = result.stats
                    cell = {
                        "placement": placement,
                        "n_shards": int(n_shards),
                        "fault_rate": float(fault_rate),
                        "imbalance": plan.imbalance,
                        "p50_ms": stats.p50_s * 1000.0,
                        "p95_ms": stats.p95_s * 1000.0,
                        "p99_ms": stats.p99_s * 1000.0,
                        "shed_fraction": stats.shed_fraction,
                        "deadline_fraction": stats.deadline_fraction,
                        "degraded_fraction": stats.degraded_fraction,
                        "ok_fraction": stats.ok_fraction,
                        "mean_recall": stats.mean_recall,
                        "mean_coverage": result.mean_coverage,
                        "failovers": result.n_failovers,
                        "hedges": result.n_hedges,
                        "hedge_wins": result.n_hedge_wins,
                        "lost_partitions": result.n_lost_partitions,
                        "breaker_opens": result.breaker_opens,
                        "breaker_half_opens": (
                            result.breaker_transitions["half_opened"]
                        ),
                        "breaker_closes": result.breaker_transitions["closed"],
                        "utilization": result.mean_utilization,
                    }
                    if checkpoint is not None:
                        checkpoint.put(key, cell)
                        cell = checkpoint.get(key)
                rows.append(dict(cell))  # type: ignore[call-overload]

    return ShardsimResult(
        experiment_id="shardsim",
        title=(
            f"Sharded serving vs shard count and fault rate — "
            f"{family}/{size_class}, {workload_name} workload, "
            f"load {load_factor:g}x, R={n_replicas}, seed {seed}"
        ),
        meta={
            "scale": data.scale.name,
            "family": family,
            "size_class": size_class,
            "workload": workload_name,
            "seed": int(seed),
            "k": int(data.scale.k),
            "n_replicas": int(n_replicas),
            "workers_per_shard": int(workers_per_shard),
            "n_queries": len(workload),
            "mean_service_s": mean_service_s,
            "load_factor": float(load_factor),
            "arrival_rate_qps": arrival_rate_qps,
            "deadline_s": deadline_s,
            "hedge_factor": float(hedge_factor),
            "placements": [str(placement) for placement in placements],
            "shard_counts": [int(count) for count in shard_counts],
            "fault_rates": [float(rate) for rate in fault_rates],
        },
        rows=rows,
    )


def run(data: ExperimentData) -> ShardsimResult:
    """Default grid (``repro experiment shardsim``)."""
    return sweep(data)
