"""Experiment drivers: one per paper table/figure, plus ablations.

Usage pattern (shared by the benchmarks, the CLI and EXPERIMENTS.md):

>>> from repro.experiments import prepare, get_scale, table1
>>> data = prepare(get_scale("test"))
>>> print(table1.run(data).render())        # doctest: +SKIP

``prepare`` is cached per scale, so running every experiment in one
process pays the data-build cost once; run-to-completion traces are also
cached and shared by figures 2-5 and Table 2.
"""

from . import (
    ablations,
    chunk_size_sweep,
    faultsim,
    fig1,
    quality_figures,
    servesim,
    shardsim,
    table1,
    table2,
)
from .checkpoint import SweepCheckpoint
from .chunk_size_sweep import run_fig6, run_fig7
from .config import DEFAULT_SCALE, SIZE_CLASSES, TEST_SCALE, ExperimentScale, get_scale
from .data import BuiltIndex, ExperimentData, clear_cache, prepare
from .quality_figures import run_fig2, run_fig3, run_fig4, run_fig5
from .results import FigureResult, TableResult

__all__ = [
    "ablations",
    "chunk_size_sweep",
    "faultsim",
    "servesim",
    "shardsim",
    "SweepCheckpoint",
    "fig1",
    "quality_figures",
    "table1",
    "table2",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "DEFAULT_SCALE",
    "SIZE_CLASSES",
    "TEST_SCALE",
    "ExperimentScale",
    "get_scale",
    "BuiltIndex",
    "ExperimentData",
    "clear_cache",
    "prepare",
    "FigureResult",
    "TableResult",
]
