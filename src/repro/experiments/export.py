"""Export experiment results as machine-readable CSV or JSON.

The rendered fixed-width text is for humans; downstream tooling (plotting
scripts, regression dashboards) consumes these exports instead.  Both
result flavors are supported:

* :class:`~repro.experiments.results.TableResult` — one CSV/JSON table;
* :class:`~repro.experiments.results.FigureResult` — long-form rows
  ``(x, series, value)`` so any plotting library can pivot them;
* :class:`~repro.experiments.servesim.ServesimResult` — one row per
  ``(fault rate, load)`` grid cell, or the full deterministic report.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Union

from .results import FigureResult, TableResult
from .servesim import ServesimResult

__all__ = ["to_csv", "to_json", "write_result"]

Result = Union[TableResult, FigureResult, ServesimResult]


def _figure_rows(result: FigureResult):
    for series_name, values in result.series.items():
        for x, value in zip(result.x_values, values):
            yield [x, series_name, value]


def to_csv(result: Result) -> str:
    """Render one result as CSV text (header row included)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    if isinstance(result, TableResult):
        writer.writerow(result.headers)
        writer.writerows(result.rows)
    elif isinstance(result, FigureResult):
        writer.writerow([result.x_label, "series", "value"])
        writer.writerows(_figure_rows(result))
    elif isinstance(result, ServesimResult):
        headers = list(result.rows[0]) if result.rows else []
        writer.writerow(headers)
        writer.writerows([row[h] for h in headers] for row in result.rows)
    else:
        raise TypeError(f"cannot export {type(result).__name__}")
    return buffer.getvalue()


def to_json(result: Result) -> str:
    """Render one result as a self-describing JSON document."""
    if isinstance(result, TableResult):
        payload = {
            "experiment_id": result.experiment_id,
            "title": result.title,
            "kind": "table",
            "headers": result.headers,
            "rows": result.rows,
        }
    elif isinstance(result, FigureResult):
        payload = {
            "experiment_id": result.experiment_id,
            "title": result.title,
            "kind": "figure",
            "x_label": result.x_label,
            "x_values": list(result.x_values),
            "series": {name: list(values) for name, values in result.series.items()},
        }
    elif isinstance(result, ServesimResult):
        payload = dict(result.to_report(), kind="service-grid")
    else:
        raise TypeError(f"cannot export {type(result).__name__}")
    return json.dumps(payload, indent=2, default=float)


def write_result(result: Result, path: str, fmt: str = "csv") -> None:
    """Write one result to ``path`` in the chosen format."""
    if fmt == "csv":
        text = to_csv(result)
    elif fmt == "json":
        text = to_json(result)
    else:
        raise ValueError(f"unknown export format {fmt!r} (use 'csv' or 'json')")
    with open(path, "w", encoding="utf-8") as stream:
        stream.write(text)
