"""Table 1 — properties of the BAG and SR-tree chunk indexes.

Paper columns: retained descriptors, discarded descriptors, percentage of
outliers (shared per size class), then number of chunks and descriptors per
chunk for BAG and for the SR-tree.

Expected shape (paper values): outlier percentage decreases from SMALL
(12.2 %) to LARGE (8.0 %); BAG and SR chunk counts are nearly equal within
each size class by construction; descriptors-per-chunk ratios across size
classes are roughly 1 : 1.8 : 2.6.
"""

from __future__ import annotations

from .config import SIZE_CLASSES
from .data import ExperimentData
from .results import TableResult

__all__ = ["run"]


def run(data: ExperimentData) -> TableResult:
    """Build Table 1 from the six chunking results."""
    rows = []
    for size_class in SIZE_CLASSES:
        bag = data.built("BAG", size_class).chunking
        sr = data.built("SR", size_class).chunking
        rows.append(
            [
                size_class,
                bag.n_retained,
                bag.n_outliers,
                round(100.0 * bag.outlier_fraction, 1),
                bag.n_chunks,
                round(bag.mean_chunk_size),
                sr.n_chunks,
                round(sr.mean_chunk_size),
            ]
        )
    return TableResult(
        experiment_id="table1",
        title="Properties of the BAG and SR-tree chunk indexes",
        headers=[
            "Chunk sizes",
            "Retained",
            "Discarded",
            "Outliers %",
            "BAG chunks",
            "BAG desc/chunk",
            "SR chunks",
            "SR desc/chunk",
        ],
        rows=rows,
    )
