"""Quality and cost metrics.

The paper's primary quality metric is "the precision within the top 30
images (when the number of returned images is fixed, recall and precision
are the same metric)" (section 5.4), logged after every processed chunk.
Figures 2-5 invert that log: for each target number of true neighbors
``N``, how many chunks (or seconds) did it take, on average over the
workload, until ``N`` of the eventual true neighbors were present?

This module computes those per-query numbers from
:class:`~repro.core.trace.SearchTrace` objects and aggregates them across a
workload.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Sequence

import numpy as np

from .trace import SearchTrace

__all__ = [
    "precision_at_k",
    "QualityCurves",
    "curves_from_traces",
    "completion_stats",
    "CompletionStats",
    "robustness_stats",
    "RobustnessStats",
]


def precision_at_k(result_ids: Sequence[int], true_ids: Sequence[int]) -> float:
    """Fraction of the true top-k present in the result list.

    With a fixed result size this equals recall, as the paper notes.
    """
    truth = set(int(i) for i in true_ids)
    if not truth:
        raise ValueError("ground truth must not be empty")
    hits = sum(1 for i in result_ids if int(i) in truth)
    return hits / len(truth)


@dataclasses.dataclass
class QualityCurves:
    """Averaged quality-vs-cost curves for one (index, workload) pair.

    ``neighbors_axis[j] = j`` true neighbors; ``chunks_read[j]`` and
    ``elapsed_s[j]`` are the workload averages of the chunks / seconds
    needed until ``j`` true neighbors were present.  Index 0 is the cost of
    the query-start work (0 chunks; the index read + ranking time).

    These arrays are exactly the series plotted in figures 2-5.
    """

    neighbors_axis: np.ndarray
    chunks_read: np.ndarray
    elapsed_s: np.ndarray
    n_queries: int

    def as_rows(self) -> List[Dict[str, float]]:
        """Row dicts, one per N, for table rendering."""
        return [
            {
                "neighbors": int(self.neighbors_axis[j]),
                "chunks_read": float(self.chunks_read[j]),
                "elapsed_s": float(self.elapsed_s[j]),
            }
            for j in range(self.neighbors_axis.shape[0])
        ]


def curves_from_traces(traces: Sequence[SearchTrace], k: int) -> QualityCurves:
    """Aggregate per-query traces into averaged figure-2/4 style curves.

    Every trace must come from a run-to-completion query (the paper always
    runs queries to conclusion so intermediate quality is measurable) with
    ground truth supplied, so ``chunks_to_find``/``time_to_find`` are
    finite for every ``N <= k``.
    """
    if not traces:
        raise ValueError("need at least one trace")
    axis = np.arange(k + 1)
    chunk_sums = np.zeros(k + 1, dtype=np.float64)
    time_sums = np.zeros(k + 1, dtype=np.float64)
    for trace in traces:
        for n in axis:
            chunks = trace.chunks_to_find(int(n))
            seconds = trace.time_to_find(int(n))
            if math.isinf(chunks) or math.isinf(seconds):
                raise ValueError(
                    f"trace never found {n} true neighbors; quality curves "
                    "require run-to-completion traces"
                )
            chunk_sums[n] += chunks
            time_sums[n] += seconds
    n_queries = len(traces)
    return QualityCurves(
        neighbors_axis=axis,
        chunks_read=chunk_sums / n_queries,
        elapsed_s=time_sums / n_queries,
        n_queries=n_queries,
    )


@dataclasses.dataclass(frozen=True)
class CompletionStats:
    """Run-to-completion cost summary for one (index, workload) pair.

    ``mean_elapsed_s`` is the Table 2 entry ("time to completion").
    """

    mean_elapsed_s: float
    mean_chunks_read: float
    mean_descriptors_scanned: float
    n_queries: int


def completion_stats(traces: Sequence[SearchTrace]) -> CompletionStats:
    """Averages over completed query traces (Table 2)."""
    if not traces:
        raise ValueError("need at least one trace")
    elapsed = np.asarray([t.final_elapsed_s for t in traces])
    chunks = np.asarray([t.chunks_read for t in traces])
    scanned = np.asarray([t.descriptors_scanned for t in traces])
    return CompletionStats(
        mean_elapsed_s=float(elapsed.mean()),
        mean_chunks_read=float(chunks.mean()),
        mean_descriptors_scanned=float(scanned.mean()),
        n_queries=len(traces),
    )


@dataclasses.dataclass(frozen=True)
class RobustnessStats:
    """Degraded-execution summary of one workload run under faults.

    Attributes
    ----------
    degraded_fraction:
        Fraction of queries that skipped at least one chunk — for these
        the exactness guarantee is void even when the proof would have
        fired.
    mean_coverage:
        Mean fraction of visited descriptors actually scanned (1.0 for
        a fault-free run); the structural bound on how much quality a
        degraded run can still deliver.
    mean_chunks_skipped, mean_retries:
        Per-query averages of abandoned chunks and of read attempts
        beyond the first (retries also count the attempts preceding an
        eventual success).
    mean_elapsed_s:
        Mean simulated completion time — this is where retry, backoff
        and spike latency surface, quantifying the *time* side of the
        fault trade-off alongside the quality side.
    """

    degraded_fraction: float
    mean_coverage: float
    mean_chunks_skipped: float
    mean_retries: float
    mean_elapsed_s: float
    n_queries: int


def robustness_stats(traces: Sequence[SearchTrace]) -> RobustnessStats:
    """Aggregate degraded-execution counters across a workload's traces."""
    if not traces:
        raise ValueError("need at least one trace")
    degraded = np.asarray([t.chunks_skipped > 0 for t in traces])
    coverage = np.asarray([t.coverage_fraction for t in traces])
    skipped = np.asarray([t.chunks_skipped for t in traces])
    retries = np.asarray([t.total_retries for t in traces])
    elapsed = np.asarray([t.final_elapsed_s for t in traces])
    return RobustnessStats(
        degraded_fraction=float(degraded.mean()),
        mean_coverage=float(coverage.mean()),
        mean_chunks_skipped=float(skipped.mean()),
        mean_retries=float(retries.mean()),
        mean_elapsed_s=float(elapsed.mean()),
        n_queries=len(traces),
    )
