"""Quality and cost metrics.

The paper's primary quality metric is "the precision within the top 30
images (when the number of returned images is fixed, recall and precision
are the same metric)" (section 5.4), logged after every processed chunk.
Figures 2-5 invert that log: for each target number of true neighbors
``N``, how many chunks (or seconds) did it take, on average over the
workload, until ``N`` of the eventual true neighbors were present?

This module computes those per-query numbers from
:class:`~repro.core.trace.SearchTrace` objects and aggregates them across a
workload.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from .trace import SearchTrace

__all__ = [
    "precision_at_k",
    "QualityCurves",
    "curves_from_traces",
    "completion_stats",
    "CompletionStats",
    "robustness_stats",
    "RobustnessStats",
    "percentile",
    "percentiles",
    "OUTCOME_OK",
    "OUTCOME_DEGRADED",
    "OUTCOME_DEADLINE",
    "OUTCOME_SHED",
    "REQUEST_OUTCOMES",
    "SloStats",
    "slo_stats",
]


def precision_at_k(result_ids: Sequence[int], true_ids: Sequence[int]) -> float:
    """Fraction of the true top-k present in the result list.

    With a fixed result size this equals recall, as the paper notes.
    """
    truth = set(int(i) for i in true_ids)
    if not truth:
        raise ValueError("ground truth must not be empty")
    hits = sum(1 for i in result_ids if int(i) in truth)
    return hits / len(truth)


@dataclasses.dataclass
class QualityCurves:
    """Averaged quality-vs-cost curves for one (index, workload) pair.

    ``neighbors_axis[j] = j`` true neighbors; ``chunks_read[j]`` and
    ``elapsed_s[j]`` are the workload averages of the chunks / seconds
    needed until ``j`` true neighbors were present.  Index 0 is the cost of
    the query-start work (0 chunks; the index read + ranking time).

    These arrays are exactly the series plotted in figures 2-5.
    """

    neighbors_axis: np.ndarray
    chunks_read: np.ndarray
    elapsed_s: np.ndarray
    n_queries: int

    def as_rows(self) -> List[Dict[str, float]]:
        """Row dicts, one per N, for table rendering."""
        return [
            {
                "neighbors": int(self.neighbors_axis[j]),
                "chunks_read": float(self.chunks_read[j]),
                "elapsed_s": float(self.elapsed_s[j]),
            }
            for j in range(self.neighbors_axis.shape[0])
        ]


def curves_from_traces(traces: Sequence[SearchTrace], k: int) -> QualityCurves:
    """Aggregate per-query traces into averaged figure-2/4 style curves.

    Every trace must come from a run-to-completion query (the paper always
    runs queries to conclusion so intermediate quality is measurable) with
    ground truth supplied, so ``chunks_to_find``/``time_to_find`` are
    finite for every ``N <= k``.
    """
    if not traces:
        raise ValueError("need at least one trace")
    axis = np.arange(k + 1)
    chunk_sums = np.zeros(k + 1, dtype=np.float64)
    time_sums = np.zeros(k + 1, dtype=np.float64)
    for trace in traces:
        for n in axis:
            chunks = trace.chunks_to_find(int(n))
            seconds = trace.time_to_find(int(n))
            if math.isinf(chunks) or math.isinf(seconds):
                raise ValueError(
                    f"trace never found {n} true neighbors; quality curves "
                    "require run-to-completion traces"
                )
            chunk_sums[n] += chunks
            time_sums[n] += seconds
    n_queries = len(traces)
    return QualityCurves(
        neighbors_axis=axis,
        chunks_read=chunk_sums / n_queries,
        elapsed_s=time_sums / n_queries,
        n_queries=n_queries,
    )


@dataclasses.dataclass(frozen=True)
class CompletionStats:
    """Run-to-completion cost summary for one (index, workload) pair.

    ``mean_elapsed_s`` is the Table 2 entry ("time to completion").
    """

    mean_elapsed_s: float
    mean_chunks_read: float
    mean_descriptors_scanned: float
    n_queries: int


def completion_stats(traces: Sequence[SearchTrace]) -> CompletionStats:
    """Averages over completed query traces (Table 2)."""
    if not traces:
        raise ValueError("need at least one trace")
    elapsed = np.asarray([t.final_elapsed_s for t in traces])
    chunks = np.asarray([t.chunks_read for t in traces])
    scanned = np.asarray([t.descriptors_scanned for t in traces])
    return CompletionStats(
        mean_elapsed_s=float(elapsed.mean()),
        mean_chunks_read=float(chunks.mean()),
        mean_descriptors_scanned=float(scanned.mean()),
        n_queries=len(traces),
    )


@dataclasses.dataclass(frozen=True)
class RobustnessStats:
    """Degraded-execution summary of one workload run under faults.

    Attributes
    ----------
    degraded_fraction:
        Fraction of queries that skipped at least one chunk — for these
        the exactness guarantee is void even when the proof would have
        fired.
    mean_coverage:
        Mean fraction of visited descriptors actually scanned (1.0 for
        a fault-free run); the structural bound on how much quality a
        degraded run can still deliver.
    mean_chunks_skipped, mean_retries:
        Per-query averages of abandoned chunks and of read attempts
        beyond the first (retries also count the attempts preceding an
        eventual success).
    mean_elapsed_s:
        Mean simulated completion time — this is where retry, backoff
        and spike latency surface, quantifying the *time* side of the
        fault trade-off alongside the quality side.
    """

    degraded_fraction: float
    mean_coverage: float
    mean_chunks_skipped: float
    mean_retries: float
    mean_elapsed_s: float
    n_queries: int


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in (0, 1]).

    Deterministic and interpolation-free: the returned value is always an
    element of ``values`` (the smallest element whose rank covers ``q``),
    so two runs that produced the same latencies report bit-identical
    p50/p95/p99 figures regardless of platform math libraries.
    """
    return percentiles(values, (q,))[0]


def percentiles(values: Sequence[float], qs: Sequence[float]) -> List[float]:
    """Nearest-rank percentiles for several ``qs`` over one shared sort.

    The batch form of :func:`percentile`: every service sweep reports
    p50/p95/p99 of the same latency list, and sorting it once per report
    instead of once per quantile keeps the aggregation linearithmic in
    the number of requests rather than in requests x quantiles.  The
    semantics are identical — each returned value is an element of
    ``values`` — so ``percentiles(v, (q,)) == [percentile(v, q)]``.
    """
    if not values:
        raise ValueError("percentile of an empty sequence is undefined")
    if not qs:
        raise ValueError("need at least one quantile")
    for q in qs:
        if not 0.0 < float(q) <= 1.0 or math.isnan(float(q)):
            raise ValueError(f"q must lie in (0, 1], got {q}")
    ordered = sorted(float(v) for v in values)
    n = len(ordered)
    return [ordered[max(1, math.ceil(float(q) * n)) - 1] for q in qs]


#: Request served and provably exact (completion proof fired or every
#: chunk was read cleanly).
OUTCOME_OK = "ok"
#: Request served but quality-degraded: the scan was trimmed by a chunk
#: budget, or chunks were skipped (faults / open breakers).
OUTCOME_DEGRADED = "degraded"
#: Request served but its deadline cut the scan short (the
#: ``DeadlineBudget`` rule fired, or the deadline expired while queued
#: and only a minimal scan ran).
OUTCOME_DEADLINE = "deadline"
#: Request rejected at admission (queue full or predicted to miss its
#: deadline); no search ran.
OUTCOME_SHED = "shed"

#: The complete per-request outcome vocabulary, in severity order.
REQUEST_OUTCOMES = (OUTCOME_OK, OUTCOME_DEGRADED, OUTCOME_DEADLINE, OUTCOME_SHED)


@dataclasses.dataclass(frozen=True)
class SloStats:
    """Service-level summary of one simulated-traffic run.

    Latency percentiles are computed with :func:`percentile`
    (nearest-rank) over *served* requests only — shed requests never
    received a result, so they have no latency; their cost appears in
    ``shed_fraction`` instead.  ``mean_recall`` averages the per-request
    recall proxy over served requests (NaN entries are skipped; NaN when
    nothing was served or no proxy was recorded).
    """

    n_requests: int
    n_served: int
    shed_fraction: float
    deadline_fraction: float
    degraded_fraction: float
    ok_fraction: float
    p50_s: float
    p95_s: float
    p99_s: float
    max_s: float
    mean_latency_s: float
    mean_recall: float

    @property
    def served_fraction(self) -> float:
        """Complement of ``shed_fraction``."""
        return self.n_served / self.n_requests if self.n_requests else 0.0


def slo_stats(
    outcomes: Sequence[str],
    latencies_s: Sequence[float],
    recalls: Optional[Sequence[float]] = None,
) -> SloStats:
    """Aggregate per-request outcomes into an :class:`SloStats` summary.

    Parameters
    ----------
    outcomes:
        One of :data:`REQUEST_OUTCOMES` per request.
    latencies_s:
        Arrival-to-completion seconds, parallel to ``outcomes``; entries
        for shed requests are ignored (conventionally NaN).
    recalls:
        Optional per-request recall proxy in [0, 1], parallel to
        ``outcomes``; NaN entries (and shed requests) are skipped.
    """
    if not outcomes:
        raise ValueError("need at least one request outcome")
    if len(latencies_s) != len(outcomes):
        raise ValueError(
            f"got {len(latencies_s)} latencies for {len(outcomes)} outcomes"
        )
    if recalls is not None and len(recalls) != len(outcomes):
        raise ValueError(
            f"got {len(recalls)} recalls for {len(outcomes)} outcomes"
        )
    unknown = sorted(set(outcomes) - set(REQUEST_OUTCOMES))
    if unknown:
        raise ValueError(f"unknown request outcomes: {unknown}")
    n = len(outcomes)
    served_lat = [
        float(lat)
        for outcome, lat in zip(outcomes, latencies_s)
        if outcome != OUTCOME_SHED
    ]
    n_served = len(served_lat)
    counts = {kind: 0 for kind in REQUEST_OUTCOMES}
    for outcome in outcomes:
        counts[outcome] += 1
    if n_served:
        p50, p95, p99 = percentiles(served_lat, (0.50, 0.95, 0.99))
        worst = max(served_lat)
        mean_latency = sum(served_lat) / n_served
    else:
        p50 = p95 = p99 = worst = mean_latency = math.nan
    mean_recall = math.nan
    if recalls is not None:
        usable = [
            float(r)
            for outcome, r in zip(outcomes, recalls)
            if outcome != OUTCOME_SHED and not math.isnan(float(r))
        ]
        if usable:
            mean_recall = sum(usable) / len(usable)
    return SloStats(
        n_requests=n,
        n_served=n_served,
        shed_fraction=counts[OUTCOME_SHED] / n,
        deadline_fraction=counts[OUTCOME_DEADLINE] / n,
        degraded_fraction=counts[OUTCOME_DEGRADED] / n,
        ok_fraction=counts[OUTCOME_OK] / n,
        p50_s=p50,
        p95_s=p95,
        p99_s=p99,
        max_s=worst,
        mean_latency_s=mean_latency,
        mean_recall=mean_recall,
    )


def robustness_stats(traces: Sequence[SearchTrace]) -> RobustnessStats:
    """Aggregate degraded-execution counters across a workload's traces."""
    if not traces:
        raise ValueError("need at least one trace")
    degraded = np.asarray([t.chunks_skipped > 0 for t in traces])
    coverage = np.asarray([t.coverage_fraction for t in traces])
    skipped = np.asarray([t.chunks_skipped for t in traces])
    retries = np.asarray([t.total_retries for t in traces])
    elapsed = np.asarray([t.final_elapsed_s for t in traces])
    return RobustnessStats(
        degraded_fraction=float(degraded.mean()),
        mean_coverage=float(coverage.mean()),
        mean_chunks_skipped=float(skipped.mean()),
        mean_retries=float(retries.mean()),
        mean_elapsed_s=float(elapsed.mean()),
        n_queries=len(traces),
    )
