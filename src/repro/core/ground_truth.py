"""Exact nearest-neighbor ground truth via sequential scan.

Paper section 5.4: "To measure precision, we first ran a sequential scan of
the collection, and stored the identifiers of the returned descriptors in a
file.  We then read this file for each measurement and used the descriptor
list to calculate the precision of the intermediate result."

:func:`exact_knn` is the sequential scan; :class:`GroundTruthStore` is the
stored-identifiers file (an ``.npz`` of per-query id lists) so expensive
scans run once per workload.
"""

from __future__ import annotations

import os
from typing import Dict, Sequence

import numpy as np

from ..storage.atomic import atomic_output
from ..storage.errors import CorruptFileError
from .dataset import DescriptorCollection
from .distance import (
    DEFAULT_BLOCK_ROWS,
    pairwise_squared_distances,
    squared_distances,
    top_k_smallest,
)

__all__ = ["exact_knn", "exact_knn_batch", "GroundTruthStore"]


# repro: exact
def exact_knn(
    collection: DescriptorCollection,
    query: np.ndarray,
    k: int,
    block_rows: int = DEFAULT_BLOCK_ROWS,
) -> np.ndarray:
    """Ids (int64) of the exact ``k`` nearest descriptors, best first.

    Scans the collection blockwise; exact, deterministic (ties broken by
    ascending id as in :func:`~repro.core.distance.top_k_smallest`).
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    n = len(collection)
    if n == 0:
        raise ValueError("cannot search an empty collection")
    query = np.asarray(query, dtype=np.float64).reshape(-1)

    best_d = np.empty(0, dtype=np.float64)
    best_ids = np.empty(0, dtype=np.int64)
    for start in range(0, n, block_rows):
        stop = min(start + block_rows, n)
        d = squared_distances(query, collection.vectors[start:stop])
        ids = collection.ids[start:stop]
        merged_d = np.concatenate([best_d, d])
        merged_ids = np.concatenate([best_ids, ids])
        keep = top_k_smallest(merged_d, min(k, merged_d.shape[0]))
        # top_k_smallest ties break on array position; enforce id order by
        # re-sorting the kept slice on (distance, id).
        keep = keep[np.lexsort((merged_ids[keep], merged_d[keep]))]
        best_d = merged_d[keep]
        best_ids = merged_ids[keep]
    return best_ids


# repro: exact
def exact_knn_batch(
    collection: DescriptorCollection,
    queries: np.ndarray,
    k: int,
    block_rows: int = DEFAULT_BLOCK_ROWS,
) -> np.ndarray:
    """Exact k-NN ids for a batch of queries; shape ``(n_queries, k)``, int64.

    The whole batch shares each blockwise pass over the collection: one
    :func:`~repro.core.distance.pairwise_squared_distances` kernel call per
    block instead of ``n_queries`` scalar scans, with the running top-k
    merged by a batched lexsort.  Ties break by ascending id, matching
    :func:`exact_knn`.  Requires ``k <= len(collection)``.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    queries = np.asarray(queries, dtype=np.float64)
    if queries.ndim == 1:
        queries = queries[np.newaxis, :]
    if k > len(collection):
        raise ValueError(f"k={k} exceeds collection size {len(collection)}")
    n_q, n = queries.shape[0], len(collection)
    if n_q == 0:
        return np.empty((0, k), dtype=np.int64)

    best_d = np.empty((n_q, 0), dtype=np.float64)
    best_ids = np.empty((n_q, 0), dtype=np.int64)
    for start in range(0, n, block_rows):
        stop = min(start + block_rows, n)
        d = pairwise_squared_distances(queries, collection.vectors[start:stop])
        ids = np.broadcast_to(collection.ids[start:stop], d.shape)
        merged_d = np.concatenate([best_d, d], axis=1)
        merged_ids = np.concatenate([best_ids, ids], axis=1)
        keep = np.lexsort((merged_ids, merged_d), axis=-1)[
            :, : min(k, merged_d.shape[1])
        ]
        best_d = np.take_along_axis(merged_d, keep, axis=1)
        best_ids = np.take_along_axis(merged_ids, keep, axis=1)
    return best_ids


class GroundTruthStore:
    """Per-query true-neighbor id lists, persistable to one ``.npz`` file."""

    def __init__(self, k: int):
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = int(k)
        self._lists: Dict[int, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self._lists)

    def put(self, query_index: int, neighbor_ids: Sequence[int]) -> None:
        ids = np.asarray(neighbor_ids, dtype=np.int64)
        if ids.shape != (self.k,):
            raise ValueError(f"expected exactly {self.k} ids, got shape {ids.shape}")
        self._lists[int(query_index)] = ids

    def get(self, query_index: int) -> np.ndarray:
        """Stored neighbor ids (int64) for one query, best first."""
        try:
            return self._lists[int(query_index)]
        except KeyError:
            raise KeyError(f"no ground truth stored for query {query_index}") from None

    def __contains__(self, query_index: int) -> bool:
        return int(query_index) in self._lists

    @classmethod
    def compute(
        cls,
        collection: DescriptorCollection,
        queries: np.ndarray,
        k: int,
    ) -> "GroundTruthStore":
        """Run the sequential scan for every query and store the ids."""
        store = cls(k)
        ids = exact_knn_batch(collection, queries, k)
        for i in range(ids.shape[0]):
            store.put(i, ids[i])
        return store

    # -- persistence ("stored the identifiers ... in a file") ---------------

    def save(self, path: str) -> None:
        if not path.endswith(".npz"):
            path = path + ".npz"
        indices = np.asarray(sorted(self._lists), dtype=np.int64)
        matrix = np.stack([self._lists[int(i)] for i in indices]) if len(indices) else (
            np.empty((0, self.k), dtype=np.int64)
        )
        with atomic_output(path) as stream:
            np.savez(stream, k=np.int64(self.k), indices=indices, ids=matrix)

    @classmethod
    def load(cls, path: str) -> "GroundTruthStore":
        if not os.path.exists(path) and os.path.exists(path + ".npz"):
            path = path + ".npz"
        with np.load(path) as data:
            missing = {"k", "indices", "ids"} - set(data.files)
            if missing:
                raise CorruptFileError(
                    f"ground truth file {path!r} is missing arrays: "
                    f"{sorted(missing)}"
                )
            store = cls(int(data["k"]))
            indices = data["indices"]
            matrix = data["ids"]
            if indices.ndim != 1 or matrix.shape != (indices.shape[0], store.k):
                raise CorruptFileError(
                    f"ground truth file {path!r} has inconsistent shapes: "
                    f"indices {indices.shape}, ids {matrix.shape}, k={store.k}"
                )
            for row, query_index in enumerate(indices):
                store.put(int(query_index), matrix[row])
        return store
