"""The chunk index: the paper's two-file architecture plus access paths.

Building a :class:`ChunkIndex` from a :class:`~repro.core.chunk.ChunkSet`
performs exactly what section 4.2 describes: the descriptors are grouped by
chunk into the chunk file (each chunk padded to full pages) and a parallel
index file records each chunk's centroid, radius and location.

Two storage backends provide the chunk contents:

* :class:`InMemoryChunkStore` — chunks held as arrays; used by the
  experiments, whose I/O cost comes from the *simulated* disk model while
  the actual bytes stay in RAM.  Page extents are still computed with the
  real on-disk layout so the simulated I/O charges are exact.
* :class:`OnDiskChunkStore` — real files via :mod:`repro.storage`; used by
  the persistence path and wall-clock sanity checks.
"""

from __future__ import annotations

import dataclasses
import os
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..storage.chunk_file import ChunkExtent, ChunkFileReader, ChunkFileWriter
from ..storage.index_file import (
    centroid_sq_norms,
    index_file_bytes,
    read_index_file_with_norms,
    write_index_file,
)
from ..storage.pages import PageGeometry
from ..storage.records import RecordCodec
from .chunk import ChunkMeta, ChunkSet
from .dataset import DescriptorCollection

__all__ = [
    "ChunkIndex",
    "InMemoryChunkStore",
    "OnDiskChunkStore",
    "build_chunk_index",
    "CHUNK_FILE_NAME",
    "INDEX_FILE_NAME",
]

CHUNK_FILE_NAME = "chunks.dat"
INDEX_FILE_NAME = "chunks.idx"


class InMemoryChunkStore:
    """Chunk contents kept as in-memory arrays."""

    def __init__(self, chunks: Sequence[Tuple[np.ndarray, np.ndarray]]):
        self._chunks = [
            (np.ascontiguousarray(ids, dtype=np.int64),
             np.ascontiguousarray(vectors, dtype=np.float32))
            for ids, vectors in chunks
        ]

    def __len__(self) -> int:
        return len(self._chunks)

    def read_chunk(self, chunk_id: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(ids, vectors)`` of one chunk."""
        return self._chunks[chunk_id]

    def close(self) -> None:
        """Nothing to release for the in-memory store."""

    def __enter__(self) -> "InMemoryChunkStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class OnDiskChunkStore:
    """Chunk contents read from a real chunk file."""

    def __init__(
        self,
        path: str,
        extents: Sequence[ChunkExtent],
        dimensions: int,
        geometry: Optional[PageGeometry] = None,
        verify_checksums: bool = True,
    ):
        self._reader = ChunkFileReader(
            path, dimensions, geometry, verify_checksums=verify_checksums
        )
        self._extents = list(extents)

    def __len__(self) -> int:
        return len(self._extents)

    @property
    def has_checksums(self) -> bool:
        """True when the backing chunk file carries a CRC32 table (v2)."""
        return self._reader.has_checksums

    def read_chunk(self, chunk_id: int) -> Tuple[np.ndarray, np.ndarray]:
        return self._reader.read_chunk(self._extents[chunk_id])

    def close(self) -> None:
        self._reader.close()

    def __enter__(self) -> "OnDiskChunkStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@dataclasses.dataclass
class ChunkIndex:
    """A built chunk index ready to be searched.

    Attributes
    ----------
    metas:
        Per-chunk :class:`ChunkMeta`, in chunk-file order.
    store:
        Backend resolving a chunk id to its ``(ids, vectors)``.
    dimensions:
        Descriptor dimensionality.
    name:
        Label used in experiment output (e.g. ``"BAG/SMALL"``).
    """

    metas: List[ChunkMeta]
    store: object
    dimensions: int
    name: str = "chunk-index"
    #: ``|centroid|^2`` per chunk, when loaded from a v2 index file (or
    #: computed at build time); ``None`` falls back to recomputation in
    #: :meth:`centroid_sq_norm_vector`.
    centroid_sq_norms: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if not self.metas:
            raise ValueError("a chunk index needs at least one chunk")
        if len(self.store) != len(self.metas):
            raise ValueError(
                f"store has {len(self.store)} chunks but index has {len(self.metas)}"
            )
        if self.centroid_sq_norms is not None and len(
            self.centroid_sq_norms
        ) != len(self.metas):
            raise ValueError(
                f"got {len(self.centroid_sq_norms)} centroid norms for "
                f"{len(self.metas)} chunks"
            )

    @property
    def n_chunks(self) -> int:
        return len(self.metas)

    @property
    def n_descriptors(self) -> int:
        return int(sum(m.n_descriptors for m in self.metas))

    @property
    def index_bytes(self) -> int:
        """Size of the index file (charged as a sequential read per query)."""
        return index_file_bytes(self.n_chunks, self.dimensions)

    def centroid_matrix(self) -> np.ndarray:
        """``(n_chunks, d)`` float64 centroid matrix for vectorized ranking."""
        return np.stack([m.centroid for m in self.metas])

    def centroid_sq_norm_vector(self) -> np.ndarray:
        """``|centroid|^2`` per chunk (float64), the expanded-form distance
        kernel's point-norm terms.

        Served from the v2 index file's norms block when one was loaded;
        recomputed otherwise with the identical formulation, so the values
        are bit-equal either way.
        """
        if self.centroid_sq_norms is not None:
            return self.centroid_sq_norms
        return centroid_sq_norms(self.centroid_matrix())

    def radius_vector(self) -> np.ndarray:
        """Chunk radii in chunk order, dtype float64."""
        return np.asarray([m.radius for m in self.metas], dtype=np.float64)

    def descriptor_counts(self) -> np.ndarray:
        """Descriptors per chunk, dtype int64."""
        return np.asarray([m.n_descriptors for m in self.metas], dtype=np.int64)

    def page_counts(self) -> np.ndarray:
        """Pages per chunk, dtype int64."""
        return np.asarray([m.page_count for m in self.metas], dtype=np.int64)

    def read_chunk(self, chunk_id: int) -> Tuple[np.ndarray, np.ndarray]:
        if not 0 <= chunk_id < self.n_chunks:
            raise IndexError(f"chunk id {chunk_id} out of range")
        return self.store.read_chunk(chunk_id)

    def close(self) -> None:
        self.store.close()

    def __enter__(self) -> "ChunkIndex":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- persistence -------------------------------------------------------

    def save(self, directory: str) -> None:
        """Write the two-file on-disk form into ``directory``.

        The persisted layout is always *compacted*: chunks are written
        sequentially and the index entries carry the fresh extents.  An
        index that accumulated relocation holes through maintenance is
        therefore defragmented by a save/load round trip.
        """
        os.makedirs(directory, exist_ok=True)
        geometry = PageGeometry()
        saved_metas: List[ChunkMeta] = []
        with ChunkFileWriter(
            os.path.join(directory, CHUNK_FILE_NAME), self.dimensions, geometry
        ) as writer:
            for chunk_id in range(self.n_chunks):
                ids, vectors = self.read_chunk(chunk_id)
                extent = writer.write_chunk(ids, vectors)
                meta = self.metas[chunk_id]
                saved_metas.append(
                    ChunkMeta(
                        chunk_id=chunk_id,
                        centroid=meta.centroid,
                        radius=meta.radius,
                        n_descriptors=meta.n_descriptors,
                        page_offset=extent.page_offset,
                        page_count=extent.page_count,
                    )
                )
        write_index_file(os.path.join(directory, INDEX_FILE_NAME), saved_metas)

    @classmethod
    def load(
        cls,
        directory: str,
        dimensions: int,
        name: str = "",
        verify_checksums: bool = True,
    ) -> "ChunkIndex":
        """Open an on-disk chunk index previously written by :meth:`save`.

        The chunk-file reader is closed again if construction fails part
        way (e.g. a store/index chunk-count mismatch), so a failed load
        never leaks an open file handle.
        """
        metas, norms = read_index_file_with_norms(
            os.path.join(directory, INDEX_FILE_NAME)
        )
        extents = [
            ChunkExtent(m.page_offset, m.page_count, m.n_descriptors) for m in metas
        ]
        store = OnDiskChunkStore(
            os.path.join(directory, CHUNK_FILE_NAME),
            extents,
            dimensions,
            verify_checksums=verify_checksums,
        )
        try:
            return cls(
                metas=metas,
                store=store,
                dimensions=dimensions,
                name=name or os.path.basename(os.path.normpath(directory)),
                centroid_sq_norms=norms,
            )
        except BaseException:
            store.close()
            raise


def build_chunk_index(
    collection: DescriptorCollection,
    chunk_set: ChunkSet,
    name: str = "chunk-index",
    geometry: Optional[PageGeometry] = None,
) -> ChunkIndex:
    """Assemble an in-memory :class:`ChunkIndex` from logical chunks.

    Page extents are laid out exactly as the on-disk writer would place
    them, so simulated I/O costs match what a real chunk file would incur.
    """
    geometry = geometry or PageGeometry()
    codec = RecordCodec(collection.dimensions)
    metas: List[ChunkMeta] = []
    contents: List[Tuple[np.ndarray, np.ndarray]] = []
    next_page = 0
    for chunk_id, chunk in enumerate(chunk_set):
        rows = chunk.member_rows
        ids = collection.ids[rows]
        vectors = collection.vectors[rows]
        payload_bytes = len(rows) * codec.record_bytes
        pages = geometry.pages_for(payload_bytes)
        metas.append(
            ChunkMeta(
                chunk_id=chunk_id,
                centroid=chunk.centroid,
                radius=chunk.radius,
                n_descriptors=len(rows),
                page_offset=next_page,
                page_count=pages,
            )
        )
        contents.append((ids, vectors))
        next_page += pages
    return ChunkIndex(
        metas=metas,
        store=InMemoryChunkStore(contents),
        dimensions=collection.dimensions,
        name=name,
        centroid_sq_norms=centroid_sq_norms(np.stack([m.centroid for m in metas])),
    )
