"""Crash-safe streaming ingest: a durable, WAL-fronted chunk index.

:class:`StreamingChunkIndex` extends the in-memory
:class:`~repro.core.maintenance.ChunkIndexMaintainer` with an on-disk
form that survives a kill at any protocol boundary.  The directory holds

* ``base-<g>.dat`` / ``base-<g>.idx`` — the last full base generation,
  written with the standard checksummed v2 chunk/index writers;
* ``wal-<c>.log`` — the write-ahead log
  (:mod:`repro.storage.wal`): every insert/delete batch is framed,
  CRC-checked and committed *before* it is applied in memory, so the
  return from :meth:`StreamingChunkIndex.apply` is the durability
  acknowledgement;
* ``delta-<c>-<p>.seg`` — per-chunk tombstone-bitmap + append segments
  (:mod:`repro.storage.delta`) published by the checkpoint compactor for
  *dirty* chunks only;
* ``MANIFEST.json`` — the atomically-replaced pointer that names the
  base generation, the live WAL and each chunk's provenance, extent and
  exact centroid/radius summary.

Every state transition follows the same discipline: write new files
under new names, fsync, publish the manifest with
:func:`repro.storage.atomic.atomic_output`, then garbage-collect what
the new manifest no longer references.  A crash anywhere leaves either
the old manifest (whose files are all still present) or the new one —
recovery in :meth:`StreamingChunkIndex.open` reconstructs the
checkpoint state, truncates the WAL's torn tail, replays the committed
batches through the identical maintainer code path, and removes
orphans.  Because member order round-trips exactly (live base rows in
base order, then appends in insertion order), recovered centroids,
radii, extents and the allocation frontier are bit-identical to the
uncrashed process — which keeps the triangle-inequality pruning bound
and the centroid router exactness-preserving across crashes.

Simulated cost: every mutation and compaction is charged through the
:class:`~repro.simio.disk_model.DiskModel` write path (sequential write
plus one sync per durability barrier) and accumulated in
``io_seconds``, so the ingest experiments report the same deterministic
simulated time the query path uses.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, NamedTuple, Optional, Sequence, Tuple, cast

import numpy as np

from ..simio.disk_model import DiskModel
from ..storage.atomic import atomic_output, fsync_directory
from ..storage.chunk_file import ChunkExtent, ChunkFileReader, ChunkFileWriter
from ..storage.delta import read_delta_segment, write_delta_segment
from ..storage.errors import CorruptFileError
from ..storage.index_file import read_index_file, write_index_file
from ..storage.pages import PageGeometry
from ..storage.wal import (
    OP_DELETE,
    OP_INSERT,
    CrashHook,
    WalOp,
    WalWriter,
    scan_wal,
    truncate_wal,
)
from .chunk import ChunkMeta, summarize_members
from .chunk_index import ChunkIndex
from .distance import squared_distances
from .maintenance import ChunkIndexMaintainer, ChunkSnapshot, MaintenanceStats

__all__ = [
    "MANIFEST_NAME",
    "FORMAT_NAME",
    "RecoveryReport",
    "CheckpointReport",
    "StreamingChunkIndex",
    "verify_streaming_index",
]

MANIFEST_NAME = "MANIFEST.json"
FORMAT_NAME = "repro-streaming-index"
FORMAT_VERSION = 1

#: File-name patterns owned by the streaming index (garbage collection
#: only ever touches these).
_OWNED_PREFIXES = ("base-", "wal-", "delta-")


def _base_chunk_name(generation: int) -> str:
    return f"base-{generation:06d}.dat"


def _base_index_name(generation: int) -> str:
    return f"base-{generation:06d}.idx"


def _wal_name(checkpoint: int) -> str:
    return f"wal-{checkpoint:06d}.log"


def _delta_name(checkpoint: int, position: int) -> str:
    return f"delta-{checkpoint:06d}-{position:05d}.seg"


class RecoveryReport(NamedTuple):
    """What :meth:`StreamingChunkIndex.open` found and repaired."""

    replayed_batches: int
    replayed_ops: int
    torn_bytes: int
    discarded_ops: int
    orphans_removed: int


class CheckpointReport(NamedTuple):
    """What one checkpoint (compaction) pass wrote."""

    checkpoint: int
    segments_written: int
    segment_bytes: int
    pages_reclaimed: int


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise CorruptFileError(message)


class StreamingChunkIndex:
    """A mutable chunk index whose state survives crashes.

    Construct with :meth:`create` (from a built
    :class:`~repro.core.chunk_index.ChunkIndex`) or :meth:`open`
    (recovery from a directory).  Mutate with :meth:`apply`; persist
    dirty chunks with :meth:`checkpoint`; fold everything back into a
    fresh base generation with :meth:`rebuild_base`.
    """

    def __init__(
        self,
        *,
        directory: str,
        name: str,
        maintainer: ChunkIndexMaintainer,
        wal: WalWriter,
        generation: int,
        checkpoint_seq: int,
        base_counts: List[int],
        disk: DiskModel,
        crash: Optional[CrashHook],
        recovery: Optional[RecoveryReport],
    ):
        self.directory = directory
        self.name = name
        self.maintainer = maintainer
        self._wal = wal
        self.generation = int(generation)
        self.checkpoint_seq = int(checkpoint_seq)
        self._base_counts = base_counts
        self._disk = disk
        self._crash = crash
        #: Recovery findings when this instance came from :meth:`open`.
        self.recovery = recovery
        #: Simulated seconds of ingest/compaction I/O charged so far.
        self.io_seconds = 0.0
        self._poisoned = False
        self._closed = False

    # -- construction ----------------------------------------------------------

    @classmethod
    def create(
        cls,
        directory: str,
        index: ChunkIndex,
        target_chunk_size: Optional[int] = None,
        split_factor: float = 2.0,
        merge_fraction: float = 0.2,
        geometry: Optional[PageGeometry] = None,
        disk: Optional[DiskModel] = None,
        crash: Optional[CrashHook] = None,
        name: str = "",
    ) -> "StreamingChunkIndex":
        """Persist ``index`` as generation 0 of a new streaming directory."""
        os.makedirs(directory, exist_ok=True)
        if os.path.exists(os.path.join(directory, MANIFEST_NAME)):
            raise ValueError(
                f"directory {directory!r} already holds a streaming index"
            )
        maintainer = ChunkIndexMaintainer(
            index,
            target_chunk_size=target_chunk_size,
            split_factor=split_factor,
            merge_fraction=merge_fraction,
            geometry=geometry,
        )
        self = cls(
            directory=directory,
            name=name or index.name,
            maintainer=maintainer,
            wal=WalWriter.create(
                os.path.join(directory, _wal_name(0)),
                maintainer.dimensions,
                tag=0,
                crash=crash,
            ),
            generation=0,
            checkpoint_seq=0,
            base_counts=[],
            disk=disk or DiskModel(),
            crash=crash,
            recovery=None,
        )
        try:
            self._persist_base(site_prefix="create")
        except BaseException:
            self._poisoned = True
            raise
        return self

    @classmethod
    def open(
        cls,
        directory: str,
        disk: Optional[DiskModel] = None,
        crash: Optional[CrashHook] = None,
    ) -> "StreamingChunkIndex":
        """Recover a streaming index from its directory.

        Reconstructs the checkpoint state from the manifest, truncates
        the WAL's uncommitted suffix, replays every committed batch, and
        garbage-collects files the manifest no longer references.  The
        resulting in-memory state is bit-identical to the process that
        wrote the log.
        """
        manifest = _read_manifest(directory)
        dimensions = int(manifest["dimensions"])
        geometry = PageGeometry(page_bytes=int(manifest["page_bytes"]))
        base_metas = read_index_file(
            os.path.join(directory, str(manifest["base_index_file"]))
        )
        snaps = _load_chunk_snapshots(directory, manifest, base_metas, geometry)
        maintainer = ChunkIndexMaintainer.restore(
            dimensions=dimensions,
            chunks=snaps,
            next_page=int(manifest["next_page"]),
            target_chunk_size=int(manifest["target_chunk_size"]),
            split_factor=float(manifest["split_factor"]),
            merge_fraction=float(manifest["merge_fraction"]),
            geometry=geometry,
            stats=_stats_from_manifest(manifest),
        )

        wal_path = os.path.join(directory, str(manifest["wal_file"]))
        scan = scan_wal(wal_path)
        _require(
            scan.dimensions == dimensions,
            "wal dimensionality does not match the manifest",
        )
        _require(
            scan.tag == int(manifest["checkpoint"]),
            "wal checkpoint tag does not match the manifest",
        )
        torn = truncate_wal(wal_path, scan)
        expected_seq = int(manifest["next_batch_seq"])
        replayed_ops = 0
        for batch in scan.batches:
            _require(
                batch.batch_seq == expected_seq,
                f"wal batch sequence gap: expected {expected_seq}, "
                f"found {batch.batch_seq}",
            )
            expected_seq += 1
            for op in batch.ops:
                _apply_op(maintainer, op)
            replayed_ops += len(batch.ops)
        orphans = _collect_garbage(directory, manifest)
        writer = WalWriter.resume(wal_path, scan, crash=crash)
        writer.next_batch_seq = expected_seq
        return cls(
            directory=directory,
            name=str(manifest["name"]),
            maintainer=maintainer,
            wal=writer,
            generation=int(manifest["generation"]),
            checkpoint_seq=int(manifest["checkpoint"]),
            base_counts=[m.n_descriptors for m in base_metas],
            disk=disk or DiskModel(),
            crash=crash,
            recovery=RecoveryReport(
                replayed_batches=len(scan.batches),
                replayed_ops=replayed_ops,
                torn_bytes=torn,
                discarded_ops=scan.discarded_ops,
                orphans_removed=orphans,
            ),
        )

    # -- properties ------------------------------------------------------------

    @property
    def dimensions(self) -> int:
        return self.maintainer.dimensions

    @property
    def n_descriptors(self) -> int:
        return len(self.maintainer)

    @property
    def n_chunks(self) -> int:
        return self.maintainer.n_chunks

    @property
    def last_batch_seq(self) -> int:
        """Sequence number of the last durable batch (``-1`` when none).

        After a crash, a driver resubmits exactly the batches it never
        saw acknowledged whose sequence exceeds this value.
        """
        return self._wal.next_batch_seq - 1

    def to_index(self, name: str = "") -> ChunkIndex:
        """Materialize the current state as a searchable index."""
        return self.maintainer.to_index(name or self.name)

    # -- mutation --------------------------------------------------------------

    def _guard(self) -> None:
        if self._closed:
            raise ValueError("streaming index is closed")
        if self._poisoned:
            raise ValueError(
                "streaming index is poisoned by an earlier failure; "
                "reopen the directory to recover"
            )

    def _reached(self, site: str) -> None:
        if self._crash is not None:
            self._crash.reached(site)

    def apply(self, ops: Sequence[WalOp]) -> int:
        """Durably apply one batch of inserts/deletes; returns its sequence.

        The batch is validated, appended to the WAL and fsynced (group
        commit — one sync however many operations) *before* the in-memory
        index is touched; the return is the acknowledgement.  A crash
        after the WAL commit but before the ack leaves the batch fully
        applied by recovery — never partially.
        """
        self._guard()
        _validate_batch(self.maintainer, ops, self.dimensions)
        try:
            before = self._wal.bytes_written
            seq = self._wal.append_batch(ops)
            self.io_seconds += (
                self._disk.sequential_write_time_s(self._wal.bytes_written - before)
                + self._disk.sync_time_s
            )
            for op in ops:
                _apply_op(self.maintainer, op)
        except BaseException:
            self._poisoned = True
            raise
        return seq

    # -- checkpointing -----------------------------------------------------------

    def checkpoint(self, defragment: bool = False) -> CheckpointReport:
        """Persist dirty chunks as delta segments and rotate the WAL.

        This is the background compactor's unit of work: only chunks
        mutated since their last checkpoint are rewritten (as tombstone-
        bitmap + append segments through the atomic publish path); clean
        chunks keep their existing base extents or segments.  With
        ``defragment=True`` the logical extents are first compacted
        sequentially, reclaiming relocation holes.  Ends by publishing a
        new manifest and garbage-collecting superseded files.
        """
        self._guard()
        try:
            return self._checkpoint(defragment)
        except BaseException:
            self._poisoned = True
            raise

    def _checkpoint(self, defragment: bool) -> CheckpointReport:
        self._reached("compact.begin")
        reclaimed = self.maintainer.compact() if defragment else 0
        checkpoint = self.checkpoint_seq + 1
        segments = 0
        segment_bytes = 0
        for position in self.maintainer.dirty_positions():
            snap = self.maintainer.snapshot(position)
            delta_file: Optional[str]
            if self._is_clean_base_chunk(snap):
                delta_file = None
            else:
                delta_file = _delta_name(checkpoint, position)
                n_bytes = self._write_segment(snap, delta_file)
                segments += 1
                segment_bytes += n_bytes
                self._charge_write(n_bytes)
                self._reached("compact.segment")
            self.maintainer.checkpointed(position, delta_file)
        self._rotate_wal(checkpoint)
        self._reached("compact.wal")
        self.checkpoint_seq = checkpoint
        self._publish_manifest()
        self._reached("compact.manifest")
        self._gc()
        return CheckpointReport(
            checkpoint=checkpoint,
            segments_written=segments,
            segment_bytes=segment_bytes,
            pages_reclaimed=reclaimed,
        )

    def rebuild_base(self) -> int:
        """Fold the whole state into a fresh base generation.

        Writes new checksummed base chunk/index files (compacted,
        sequential extents), declares every chunk a clean base chunk, and
        rotates the WAL — the full-rebuild alternative the compactor
        escalates to when fragmentation makes delta chains poor value.
        Returns the new generation number.
        """
        self._guard()
        try:
            self.generation += 1
            self.checkpoint_seq += 1
            self._persist_base(site_prefix="rebuild")
        except BaseException:
            self._poisoned = True
            raise
        return self.generation

    def _persist_base(self, site_prefix: str) -> None:
        """Shared by :meth:`create` and :meth:`rebuild_base`.

        Order matters for crash safety: chunk file, index file, fresh
        WAL, manifest (the atomic pointer flip), then GC.  Until the
        manifest lands, the previous manifest's files are all intact.
        """
        maintainer = self.maintainer
        maintainer.compact()
        directory = self.directory
        chunk_path = os.path.join(directory, _base_chunk_name(self.generation))
        with ChunkFileWriter(
            chunk_path, maintainer.dimensions, maintainer.geometry
        ) as writer:
            for position in range(maintainer.n_chunks):
                snap = maintainer.snapshot(position)
                extent = writer.write_chunk(
                    np.asarray(snap.ids, dtype=np.int64), snap.vectors
                )
                if (extent.page_offset, extent.page_count) != (
                    snap.page_offset,
                    snap.page_count,
                ):
                    raise AssertionError(
                        "compacted extents must match the sequential writer"
                    )
        self._charge_write(os.path.getsize(chunk_path))
        self._reached(f"{site_prefix}.chunks")
        maintainer.rebase()
        index_path = os.path.join(directory, _base_index_name(self.generation))
        metas = _current_metas(maintainer)
        write_index_file(index_path, metas)
        self._charge_write(os.path.getsize(index_path))
        self._reached(f"{site_prefix}.index")
        self._base_counts = [m.n_descriptors for m in metas]
        self._rotate_wal(self.checkpoint_seq)
        self._reached(f"{site_prefix}.wal")
        self._publish_manifest()
        self._reached(f"{site_prefix}.manifest")
        self._gc()

    def _rotate_wal(self, checkpoint: int) -> None:
        """Close the live WAL and start a fresh one for ``checkpoint``.

        Batch sequence numbers continue across rotations, so a driver's
        acknowledgement bookkeeping survives checkpoints unchanged.
        """
        next_seq = self._wal.next_batch_seq
        self._wal.close()
        self._wal = WalWriter.create(
            os.path.join(self.directory, _wal_name(checkpoint)),
            self.dimensions,
            tag=checkpoint,
            next_batch_seq=next_seq,
            crash=self._crash,
        )
        self._charge_write(self._wal.bytes_written)

    def _is_clean_base_chunk(self, snap: ChunkSnapshot) -> bool:
        """True when the chunk's contents equal its base chunk exactly."""
        if snap.base_ref < 0 or snap.base_ref >= len(self._base_counts):
            return False
        base_rows = self._base_counts[snap.base_ref]
        return len(snap.origins) == base_rows and snap.origins == tuple(
            range(base_rows)
        )

    def _write_segment(self, snap: ChunkSnapshot, delta_file: str) -> int:
        base_ref = snap.base_ref
        live: Optional[np.ndarray] = None
        n_base = 0
        if base_ref >= 0:
            _require(
                base_ref < len(self._base_counts),
                f"chunk references base chunk {base_ref} outside generation",
            )
            base_rows = self._base_counts[base_ref]
            origins = np.asarray(snap.origins, dtype=np.int64)
            base_part = origins[origins >= 0]
            # The origin-prefix invariant the maintainer preserves: base
            # rows first (strictly increasing), appends after.
            if base_part.size:
                if int(origins[: base_part.size].min()) < 0 or not bool(
                    np.all(np.diff(base_part) > 0)
                ):
                    raise AssertionError("chunk origin prefix invariant violated")
                _require(
                    int(base_part.max()) < base_rows,
                    f"chunk origin row beyond base chunk {base_ref}",
                )
            mask = np.zeros(base_rows, dtype=bool)
            mask[base_part] = True
            live = mask
            n_base = int(base_part.size)
        appended_ids = np.asarray(snap.ids[n_base:], dtype=np.int64)
        appended_vectors = snap.vectors[n_base:]
        return write_delta_segment(
            os.path.join(self.directory, delta_file),
            self.dimensions,
            base_ref,
            live,
            appended_ids,
            appended_vectors,
        )

    def _publish_manifest(self) -> None:
        manifest = self._manifest_dict()
        payload = (json.dumps(manifest, sort_keys=True, indent=2) + "\n").encode(
            "ascii"
        )
        with atomic_output(os.path.join(self.directory, MANIFEST_NAME)) as stream:
            stream.write(payload)
        fsync_directory(self.directory)
        self._charge_write(len(payload))

    def _manifest_dict(self) -> Dict[str, Any]:
        maintainer = self.maintainer
        chunks: List[Dict[str, Any]] = []
        for position in range(maintainer.n_chunks):
            snap = maintainer.snapshot(position)
            if snap.dirty:
                raise AssertionError("cannot publish a manifest over dirty chunks")
            centroid, radius = summarize_members(snap.vectors)
            chunks.append(
                {
                    "base_ref": snap.base_ref,
                    "delta_file": snap.delta_file,
                    "page_offset": snap.page_offset,
                    "page_count": snap.page_count,
                    "n_descriptors": len(snap.ids),
                    "centroid": [float(c) for c in centroid],
                    "radius": float(radius),
                }
            )
        stats = maintainer.stats
        return {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "name": self.name,
            "dimensions": self.dimensions,
            "generation": self.generation,
            "checkpoint": self.checkpoint_seq,
            "base_chunk_file": _base_chunk_name(self.generation),
            "base_index_file": _base_index_name(self.generation),
            "wal_file": _wal_name(self.checkpoint_seq),
            "next_batch_seq": self._wal.next_batch_seq,
            "next_page": maintainer.next_page,
            "page_bytes": maintainer.geometry.page_bytes,
            "target_chunk_size": maintainer.target_chunk_size,
            "split_factor": maintainer.split_factor,
            "merge_fraction": maintainer.merge_fraction,
            "stats": {
                "inserts": stats.inserts,
                "deletes": stats.deletes,
                "splits": stats.splits,
                "merges": stats.merges,
                "relocations": stats.relocations,
                "dead_pages": stats.dead_pages,
            },
            "chunks": chunks,
        }

    def _gc(self) -> int:
        manifest = _read_manifest(self.directory)
        return _collect_garbage(self.directory, manifest)

    def _charge_write(self, n_bytes: int) -> None:
        self.io_seconds += (
            self._disk.sequential_write_time_s(int(n_bytes)) + self._disk.sync_time_s
        )

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._wal.close()

    def __enter__(self) -> "StreamingChunkIndex":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# -- shared loading helpers ------------------------------------------------------


def _read_manifest(directory: str) -> Dict[str, Any]:
    path = os.path.join(directory, MANIFEST_NAME)
    try:
        with open(path, "r", encoding="ascii") as handle:
            manifest = json.load(handle)
    except FileNotFoundError:
        raise CorruptFileError(f"no streaming-index manifest in {directory!r}")
    except (OSError, ValueError) as error:
        raise CorruptFileError(f"unreadable streaming-index manifest: {error}")
    _require(isinstance(manifest, dict), "manifest must be a JSON object")
    _require(
        manifest.get("format") == FORMAT_NAME,
        f"manifest format is not {FORMAT_NAME!r}",
    )
    _require(
        manifest.get("version") == FORMAT_VERSION,
        f"unsupported manifest version {manifest.get('version')!r}",
    )
    for key in (
        "dimensions",
        "generation",
        "checkpoint",
        "next_batch_seq",
        "next_page",
        "page_bytes",
        "target_chunk_size",
    ):
        _require(
            isinstance(manifest.get(key), int), f"manifest field {key!r} must be int"
        )
    for key in ("split_factor", "merge_fraction"):
        _require(
            isinstance(manifest.get(key), (int, float)),
            f"manifest field {key!r} must be numeric",
        )
    for key in ("base_chunk_file", "base_index_file", "wal_file"):
        value = manifest.get(key)
        _require(
            isinstance(value, str) and os.path.basename(value) == value,
            f"manifest field {key!r} must be a bare file name",
        )
        _require(
            os.path.exists(os.path.join(directory, str(value))),
            f"manifest references missing file {value!r}",
        )
    _require(
        isinstance(manifest.get("chunks"), list) and bool(manifest["chunks"]),
        "manifest must list at least one chunk",
    )
    return cast(Dict[str, Any], manifest)


def _stats_from_manifest(manifest: Dict[str, Any]) -> MaintenanceStats:
    raw = manifest.get("stats") or {}
    _require(isinstance(raw, dict), "manifest stats must be an object")
    return MaintenanceStats(
        inserts=int(raw.get("inserts", 0)),
        deletes=int(raw.get("deletes", 0)),
        splits=int(raw.get("splits", 0)),
        merges=int(raw.get("merges", 0)),
        relocations=int(raw.get("relocations", 0)),
        dead_pages=int(raw.get("dead_pages", 0)),
    )


def _load_chunk_snapshots(
    directory: str,
    manifest: Dict[str, Any],
    base_metas: Sequence[ChunkMeta],
    geometry: PageGeometry,
) -> List[ChunkSnapshot]:
    """Reconstruct every chunk's checkpoint state from base + deltas."""
    dimensions = int(manifest["dimensions"])
    snaps: List[ChunkSnapshot] = []
    base_path = os.path.join(directory, str(manifest["base_chunk_file"]))
    with ChunkFileReader(base_path, dimensions, geometry) as base_reader:
        for position, raw in enumerate(manifest["chunks"]):
            _require(
                isinstance(raw, dict), f"manifest chunk {position} must be an object"
            )
            entry = cast(Dict[str, Any], raw)
            base_ref = int(entry["base_ref"])
            delta_file = entry.get("delta_file")
            _require(
                delta_file is None or isinstance(delta_file, str),
                f"manifest chunk {position} has a malformed delta_file",
            )
            ids, vectors, origins = _reconstruct_chunk(
                directory, base_reader, base_metas, dimensions, base_ref,
                cast(Optional[str], delta_file), position,
            )
            _require(
                len(ids) == int(entry["n_descriptors"]),
                f"manifest chunk {position} claims {entry['n_descriptors']} "
                f"descriptors, reconstruction found {len(ids)}",
            )
            snaps.append(
                ChunkSnapshot(
                    ids=tuple(int(i) for i in ids),
                    vectors=vectors,
                    origins=tuple(origins),
                    base_ref=base_ref,
                    delta_file=cast(Optional[str], delta_file),
                    dirty=False,
                    page_offset=int(entry["page_offset"]),
                    page_count=int(entry["page_count"]),
                )
            )
    return snaps


def _reconstruct_chunk(
    directory: str,
    base_reader: ChunkFileReader,
    base_metas: Sequence[ChunkMeta],
    dimensions: int,
    base_ref: int,
    delta_file: Optional[str],
    position: int,
) -> Tuple[np.ndarray, np.ndarray, List[int]]:
    """One chunk's ``(ids, vectors, origins)`` at checkpoint time.

    Member order is the durability contract: live base rows in base
    order, then appended records in insertion order.
    """
    if delta_file is None:
        _require(
            0 <= base_ref < len(base_metas),
            f"manifest chunk {position} has no delta and no valid base chunk",
        )
        meta = base_metas[base_ref]
        ids, vectors = base_reader.read_chunk(
            ChunkExtent(meta.page_offset, meta.page_count, meta.n_descriptors)
        )
        return ids, vectors, list(range(len(ids)))
    segment = read_delta_segment(os.path.join(directory, delta_file), dimensions)
    _require(
        segment.base_ref == base_ref,
        f"delta segment {delta_file!r} targets base chunk {segment.base_ref}, "
        f"manifest says {base_ref}",
    )
    if base_ref < 0:
        _require(
            segment.ids.size > 0, f"baseless delta segment {delta_file!r} is empty"
        )
        return segment.ids, segment.vectors, [-1] * int(segment.ids.size)
    _require(
        0 <= base_ref < len(base_metas),
        f"delta segment {delta_file!r} references base chunk {base_ref} "
        "outside the generation",
    )
    meta = base_metas[base_ref]
    _require(
        segment.live.size == meta.n_descriptors,
        f"delta segment {delta_file!r} mask covers {segment.live.size} rows, "
        f"base chunk holds {meta.n_descriptors}",
    )
    base_ids, base_vectors = base_reader.read_chunk(
        ChunkExtent(meta.page_offset, meta.page_count, meta.n_descriptors)
    )
    live_rows = np.flatnonzero(segment.live)
    ids = np.concatenate([base_ids[live_rows], segment.ids])
    vectors = np.concatenate(
        [base_vectors[live_rows], segment.vectors], axis=0
    ).astype(np.float32, copy=False)
    _require(ids.size > 0, f"delta segment {delta_file!r} leaves the chunk empty")
    origins = [int(r) for r in live_rows] + [-1] * int(segment.ids.size)
    return ids, vectors, origins


def _current_metas(maintainer: ChunkIndexMaintainer) -> List[ChunkMeta]:
    metas: List[ChunkMeta] = []
    for position in range(maintainer.n_chunks):
        snap = maintainer.snapshot(position)
        centroid, radius = summarize_members(snap.vectors)
        metas.append(
            ChunkMeta(
                chunk_id=position,
                centroid=centroid,
                radius=radius,
                n_descriptors=len(snap.ids),
                page_offset=snap.page_offset,
                page_count=snap.page_count,
            )
        )
    return metas


def _apply_op(maintainer: ChunkIndexMaintainer, op: WalOp) -> None:
    if op.kind == OP_INSERT:
        if op.vector is None:
            raise CorruptFileError("insert op lost its vector")
        maintainer.insert(op.descriptor_id, op.vector)
    elif op.kind == OP_DELETE:
        maintainer.delete(op.descriptor_id)
    else:
        raise CorruptFileError(f"unknown wal op kind {op.kind!r}")


def _validate_batch(
    maintainer: ChunkIndexMaintainer, ops: Sequence[WalOp], dimensions: int
) -> None:
    """Reject a batch that could not replay cleanly.

    Validation happens *before* the WAL append: once a batch commits it
    must apply without error during recovery, so duplicate inserts,
    deletes of absent ids and malformed vectors are caught here.
    """
    if not ops:
        raise ValueError("a batch needs at least one operation")
    pending: Dict[int, bool] = {}
    int32 = np.iinfo(np.int32)
    for op in ops:
        descriptor_id = int(op.descriptor_id)
        if not int32.min <= descriptor_id <= int32.max:
            raise ValueError(
                f"descriptor id {descriptor_id} does not fit the on-disk "
                "int32 field"
            )
        present = pending.get(descriptor_id, descriptor_id in maintainer)
        if op.kind == OP_INSERT:
            if op.vector is None:
                raise ValueError("insert op requires a vector")
            vector = np.asarray(op.vector, dtype=np.float32).reshape(-1)
            if vector.shape[0] != dimensions:
                raise ValueError("insert vector dimensionality mismatch")
            if present:
                raise ValueError(
                    f"descriptor id {descriptor_id} already present"
                )
            pending[descriptor_id] = True
        elif op.kind == OP_DELETE:
            if not present:
                raise KeyError(f"descriptor id {descriptor_id} not in index")
            pending[descriptor_id] = False
        else:
            raise ValueError(f"unknown wal op kind {op.kind!r}")


def _collect_garbage(directory: str, manifest: Dict[str, Any]) -> int:
    """Remove owned files the manifest no longer references."""
    keep = {
        str(manifest["base_chunk_file"]),
        str(manifest["base_index_file"]),
        str(manifest["wal_file"]),
    }
    for raw in manifest["chunks"]:
        entry = cast(Dict[str, Any], raw)
        if entry.get("delta_file"):
            keep.add(str(entry["delta_file"]))
    removed = 0
    for file_name in sorted(os.listdir(directory)):
        if file_name in keep or file_name == MANIFEST_NAME:
            continue
        if file_name.startswith(_OWNED_PREFIXES) or file_name.endswith(".tmp"):
            os.unlink(os.path.join(directory, file_name))
            removed += 1
    return removed


# -- deep verification ------------------------------------------------------------


def verify_streaming_index(directory: str) -> Dict[str, Any]:
    """Deep consistency check of a streaming-index directory (read-only).

    Validates, in dependency order: the manifest and its file references;
    base file checksums; delta segment checksums and structure; exact
    centroid/radius recomputation against the stored summaries; extent
    bounds and non-overlap; WAL frame integrity and batch-sequence
    continuity; and, after replaying the committed log, global
    tombstone/liveness accounting (unique ids, non-empty chunks, every
    member inside its chunk's exact bounding radius — the invariant the
    pruning bound's soundness rests on).

    Returns a JSON-ready report; ``report["ok"]`` is the verdict.  Never
    mutates the directory (torn WAL tails are reported, not truncated).
    """
    checks: List[Dict[str, Any]] = []
    summary: Dict[str, Any] = {"format": FORMAT_NAME, "checks": checks}

    def record(name: str, ok: bool, detail: str) -> bool:
        checks.append({"name": name, "ok": bool(ok), "detail": detail})
        return ok

    manifest: Optional[Dict[str, Any]] = None
    try:
        manifest = _read_manifest(directory)
        record(
            "manifest",
            True,
            f"generation {manifest['generation']}, checkpoint "
            f"{manifest['checkpoint']}, {len(manifest['chunks'])} chunks",
        )
    except (CorruptFileError, OSError) as error:
        record("manifest", False, str(error))
    if manifest is None:
        summary["ok"] = False
        return summary

    dimensions = int(manifest["dimensions"])
    geometry = PageGeometry(page_bytes=int(manifest["page_bytes"]))
    snaps: Optional[List[ChunkSnapshot]] = None
    base_metas: Optional[List[ChunkMeta]] = None
    try:
        base_metas = read_index_file(
            os.path.join(directory, str(manifest["base_index_file"]))
        )
        snaps = _load_chunk_snapshots(directory, manifest, base_metas, geometry)
        record(
            "storage",
            True,
            f"{len(base_metas)} base chunks, "
            f"{sum(1 for s in snaps if s.delta_file is not None)} delta segments, "
            "all checksums verified",
        )
    except (CorruptFileError, OSError) as error:
        record("storage", False, str(error))
    if snaps is None:
        summary["ok"] = False
        return summary

    summaries_ok = True
    details: List[str] = []
    for position, (snap, raw) in enumerate(zip(snaps, manifest["chunks"])):
        entry = cast(Dict[str, Any], raw)
        centroid, radius = summarize_members(snap.vectors)
        stored = np.asarray(entry["centroid"], dtype=np.float64)
        if stored.shape != centroid.shape or not np.array_equal(stored, centroid):
            summaries_ok = False
            details.append(f"chunk {position}: stored centroid is not exact")
        if float(entry["radius"]) != radius:
            summaries_ok = False
            details.append(f"chunk {position}: stored radius is not exact")
    record(
        "summaries",
        summaries_ok,
        "; ".join(details)
        if details
        else f"{len(snaps)} stored centroid/radius summaries recomputed exactly",
    )

    extents_ok = True
    details = []
    codec_bytes = np.dtype([("id", "<i4"), ("vector", "<f4", (dimensions,))]).itemsize
    spans: List[Tuple[int, int, int]] = []
    for position, snap in enumerate(snaps):
        needed = geometry.pages_for(len(snap.ids) * codec_bytes)
        if snap.page_count < needed:
            extents_ok = False
            details.append(
                f"chunk {position}: extent of {snap.page_count} pages cannot "
                f"hold {len(snap.ids)} records"
            )
        spans.append((snap.page_offset, snap.page_offset + snap.page_count, position))
    spans.sort()
    for (_, prev_end, prev_pos), (start, _, pos) in zip(spans, spans[1:]):
        if start < prev_end:
            extents_ok = False
            details.append(f"chunks {prev_pos} and {pos}: extents overlap")
    if spans and spans[-1][1] > int(manifest["next_page"]):
        extents_ok = False
        details.append("allocation frontier is behind the last extent")
    record(
        "extents",
        extents_ok,
        "; ".join(details) if details else "extents disjoint and sized",
    )

    scan = None
    try:
        scan = scan_wal(os.path.join(directory, str(manifest["wal_file"])))
        wal_ok = scan.dimensions == dimensions and scan.tag == int(
            manifest["checkpoint"]
        )
        seqs = [batch.batch_seq for batch in scan.batches]
        expected = list(
            range(
                int(manifest["next_batch_seq"]),
                int(manifest["next_batch_seq"]) + len(seqs),
            )
        )
        if seqs != expected:
            wal_ok = False
        record(
            "wal",
            wal_ok,
            f"{len(scan.batches)} committed batches, "
            f"{scan.torn_bytes} torn tail bytes "
            f"({scan.discarded_ops} uncommitted ops to discard)",
        )
        if not wal_ok:
            scan = None
    except (CorruptFileError, OSError) as error:
        record("wal", False, str(error))

    liveness_ok = False
    if scan is not None:
        try:
            maintainer = ChunkIndexMaintainer.restore(
                dimensions=dimensions,
                chunks=snaps,
                next_page=int(manifest["next_page"]),
                target_chunk_size=int(manifest["target_chunk_size"]),
                split_factor=float(manifest["split_factor"]),
                merge_fraction=float(manifest["merge_fraction"]),
                geometry=geometry,
                stats=_stats_from_manifest(manifest),
            )
            for batch in scan.batches:
                for op in batch.ops:
                    _apply_op(maintainer, op)
            details = []
            seen = 0
            for position in range(maintainer.n_chunks):
                snap = maintainer.snapshot(position)
                if not snap.ids:
                    details.append(f"chunk {position}: empty chunk survived")
                    continue
                seen += len(snap.ids)
                centroid, radius = summarize_members(snap.vectors)
                worst = float(
                    np.sqrt(squared_distances(centroid, snap.vectors).max())
                )
                if worst > radius:
                    details.append(
                        f"chunk {position}: member at distance {worst} exceeds "
                        f"radius {radius}"
                    )
            if seen != len(maintainer):
                details.append(
                    f"id map holds {len(maintainer)} ids, chunks hold {seen}"
                )
            liveness_ok = not details
            record(
                "liveness",
                liveness_ok,
                "; ".join(details)
                if details
                else (
                    f"{len(maintainer)} live descriptors in "
                    f"{maintainer.n_chunks} chunks after replaying "
                    f"{len(scan.batches)} batches; every member inside its "
                    "chunk's exact radius"
                ),
            )
            summary["n_descriptors"] = len(maintainer)
            summary["n_chunks"] = maintainer.n_chunks
            summary["replayed_batches"] = len(scan.batches)
            summary["torn_bytes"] = scan.torn_bytes
        except (CorruptFileError, KeyError, ValueError) as error:
            record("liveness", False, f"wal replay failed: {error}")
    else:
        record("liveness", False, "skipped: wal check failed")

    summary["ok"] = all(bool(check["ok"]) for check in checks)
    return summary
