"""Distance kernels for descriptor search.

All similarity in the reproduced paper is plain Euclidean distance in the
24-dimensional descriptor space (paper section 4.1: "similarity between
images is implemented as a nearest-neighbors search in a Euclidean space").

The kernels here are the hot path of the whole system: both the sequential
scan used for ground truth and the per-chunk scan of the approximate search
funnel through :func:`euclidean_distances`.  They are written as blockwise
NumPy so that collections far larger than the CPU cache can be scanned
without materializing an ``n_queries x n_points`` matrix.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "squared_distances",
    "euclidean_distances",
    "pairwise_squared_distances",
    "top_k_smallest",
    "nearest_index",
]

#: Block size (rows of the point matrix) used by the blockwise kernels.  At
#: 24 float32 dimensions a 65536-row block is ~6 MB, comfortably in L3.
DEFAULT_BLOCK_ROWS = 65536


def _as_matrix(vectors: np.ndarray) -> np.ndarray:
    """Return ``vectors`` as a 2-D float array, promoting a single vector."""
    arr = np.asarray(vectors)
    if arr.ndim == 1:
        arr = arr[np.newaxis, :]
    if arr.ndim != 2:
        raise ValueError(f"expected 1-D or 2-D vectors, got shape {arr.shape}")
    return arr


# repro: exact
def squared_distances(query: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances from one query vector to many points.

    Uses the direct ``sum((p - q)**2)`` formulation, which is numerically
    exact (no catastrophic cancellation), unlike the expanded
    ``|p|^2 - 2 p.q + |q|^2`` form.

    Non-float64 inputs (the collections are stored float32) are promoted
    blockwise: each block's float64 temporary is bounded instead of a full
    float64 copy of ``points`` being materialized per call.  Every row's
    reduction is independent of the blocking, so the result is bit-identical
    to promoting the whole matrix first.

    Parameters
    ----------
    query:
        A single vector of shape ``(d,)``.
    points:
        Matrix of shape ``(n, d)``.

    Returns
    -------
    ndarray of shape ``(n,)``, dtype float64.
    """
    points = _as_matrix(points)
    query = np.asarray(query, dtype=np.float64).reshape(-1)
    if query.shape[0] != points.shape[1]:
        raise ValueError(
            f"dimension mismatch: query has {query.shape[0]} dims, "
            f"points have {points.shape[1]}"
        )
    if points.dtype == np.float64 or points.shape[0] <= DEFAULT_BLOCK_ROWS:
        diff = points.astype(np.float64, copy=False) - query
        return np.einsum("ij,ij->i", diff, diff)
    out = np.empty(points.shape[0], dtype=np.float64)
    for start in range(0, points.shape[0], DEFAULT_BLOCK_ROWS):
        stop = min(start + DEFAULT_BLOCK_ROWS, points.shape[0])
        diff = points[start:stop].astype(np.float64) - query
        np.einsum("ij,ij->i", diff, diff, out=out[start:stop])
    return out


# repro: exact
def euclidean_distances(query: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Euclidean distances from one query vector to many points (float64)."""
    return np.sqrt(squared_distances(query, points))


# repro: exact
def pairwise_squared_distances(
    queries: np.ndarray,
    points: np.ndarray,
    block_rows: int = DEFAULT_BLOCK_ROWS,
    points_sq_norms: "np.ndarray | None" = None,
) -> np.ndarray:
    """Full ``(n_queries, n_points)`` float64 matrix of squared distances.

    Computed blockwise over ``points`` to bound temporary memory, using the
    dot-product expansion ``|q|^2 - 2 q.p + |p|^2`` (clamped at zero) so
    each block is one BLAS matmul.  This is the hot kernel of batched chunk
    ranking and batched chunk scans; it agrees with the direct form to
    ~1e-9 on descriptor-scale data but is not bit-identical to
    :func:`squared_distances` on near-duplicate pairs.

    ``points_sq_norms`` optionally supplies the precomputed ``|p|^2`` terms
    (shape ``(n_points,)``, float64) — e.g. the per-chunk centroid norms a
    v2 index file stores — skipping their recomputation.  They must equal
    ``einsum("pd,pd->p", points, points)`` on the float64-promoted points
    for the result to be unchanged (norms computed that way once and stored
    are bit-identical to recomputing them here).
    """
    if block_rows <= 0:
        raise ValueError(f"block_rows must be positive, got {block_rows}")
    queries = _as_matrix(queries).astype(np.float64, copy=False)
    points = _as_matrix(points)
    if queries.shape[1] != points.shape[1]:
        raise ValueError(
            f"dimension mismatch: queries have {queries.shape[1]} dims, "
            f"points have {points.shape[1]}"
        )
    if points_sq_norms is not None and points_sq_norms.shape[0] != points.shape[0]:
        raise ValueError(
            f"got {points_sq_norms.shape[0]} point norms "
            f"for {points.shape[0]} points"
        )
    n_q, n_p = queries.shape[0], points.shape[0]
    out = np.empty((n_q, n_p), dtype=np.float64)
    # |q - p|^2 = |q|^2 - 2 q.p + |p|^2: one BLAS matmul per block instead
    # of the 3-D broadcast temporary.  Cancellation can drive near-duplicate
    # pairs a few ulps below zero, so the result is clamped at zero.
    q_sq = np.einsum("qd,qd->q", queries, queries)
    for start in range(0, n_p, block_rows):
        stop = min(start + block_rows, n_p)
        block = points[start:stop].astype(np.float64, copy=False)
        if points_sq_norms is None:
            p_sq = np.einsum("pd,pd->p", block, block)
        else:
            p_sq = points_sq_norms[start:stop]
        segment = out[:, start:stop]
        np.matmul(queries, block.T, out=segment)
        segment *= -2.0
        segment += q_sq[:, np.newaxis]
        segment += p_sq[np.newaxis, :]
        np.maximum(segment, 0.0, out=segment)
    return out


# repro: exact
def top_k_smallest(values: np.ndarray, k: int) -> np.ndarray:
    """Indices (dtype intp) of the ``k`` smallest values, sorted
    ascending by value.

    Ties are broken by index (stable), which keeps ground-truth neighbor
    lists deterministic across runs.
    """
    values = np.asarray(values)
    if k <= 0:
        return np.empty(0, dtype=np.intp)
    n = values.shape[0]
    if k >= n:
        return np.argsort(values, kind="stable")
    # argpartition would be O(n), but its choice among values tied with the
    # k-th is arbitrary, breaking index-order determinism on ties; the
    # stable full sort guarantees (value, index) order.  This function is
    # not on the per-chunk hot path (NeighborSet is), so O(n log n) is fine.
    return np.argsort(values, kind="stable")[:k]


# repro: exact
def nearest_index(query: np.ndarray, points: np.ndarray) -> int:
    """Index of the single nearest point to ``query`` (ties -> lowest index)."""
    d = squared_distances(query, points)
    return int(np.argmin(d))
