"""The approximate chunk-search algorithm (paper section 4.3).

For a query descriptor the searcher:

1. computes the distance between the query and the centroids of all chunks
   and ranks the chunks by increasing distance (one pass over the index
   file, charged as a sequential read plus ranking CPU);
2. reads chunks in rank order; each chunk's descriptors are fetched and
   their distances to the query computed, possibly updating the current
   neighbor set;
3. after every chunk, consults the stop rule, and independently checks the
   exact-completion proof: once ``k`` neighbors are known and the minimum
   possible distance to any *remaining* chunk (``d(query, centroid) -
   radius``, the reason radii are stored in the index) exceeds the current
   k-th distance, all true nearest neighbors have provably been found.

Timing comes from a :class:`~repro.simio.pipeline.PipelineSimulator`
(deterministic, calibrated to the paper's hardware) or a wall clock.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Sequence

import numpy as np

from ..faults.injector import FaultInjector
from ..faults.plan import OK_OUTCOME
from ..simio.calibration import PAPER_2005_COST_MODEL
from ..simio.pipeline import CostModel
from ..storage.errors import CorruptFileError
from .chunk_index import ChunkIndex
from .distance import squared_distances
from .neighbors import Neighbor, NeighborSet
from .routing import CentroidRouter
from .stop_rules import ExactCompletion, SearchProgress, StopRule
from .trace import SearchTrace, TraceEvent

__all__ = ["ChunkSearcher", "SearchResult", "RANK_BY_CENTROID", "RANK_BY_LOWER_BOUND"]

#: Rank chunks by distance to the centroid (what the paper does).
RANK_BY_CENTROID = "centroid"
#: Rank chunks by the lower bound ``d(centroid) - radius`` (ablation).
RANK_BY_LOWER_BOUND = "lower_bound"


@dataclasses.dataclass
class SearchResult:
    """Outcome of one query.

    Attributes
    ----------
    neighbors:
        Final neighbor list, best first.
    trace:
        Per-chunk execution log (always recorded).
    stop_reason:
        Which rule ended the search: ``"completed"`` for the exactness
        proof, ``"exhausted"`` when every chunk was read, else the stop
        rule's reason string.
    completed:
        True iff the result is provably the exact k-NN answer.  Never
        True for a degraded run: a skipped chunk may have held a true
        neighbor, so the exactness proof is unsound over it.
    degraded:
        True when at least one chunk was skipped after exhausting its
        read retries (see ``trace.chunks_skipped`` for how many and
        ``coverage_fraction`` for the descriptor coverage that remains).
    chunks_pruned:
        How many visited chunks the triangle-inequality pruner excused
        from scanning (host-side work saved).  Pruning never changes the
        result: a pruned chunk is charged identical simulated time and
        logged with an identical trace event — it provably could not have
        altered the neighbor set, so only the wall-clock work (store read,
        distance kernel, heap update) is skipped.
    """

    neighbors: List[Neighbor]
    trace: SearchTrace
    stop_reason: str
    completed: bool
    degraded: bool = False
    chunks_pruned: int = 0

    @property
    def chunks_read(self) -> int:
        return self.trace.chunks_read

    @property
    def chunks_skipped(self) -> int:
        """Chunks abandoned under degraded execution."""
        return self.trace.chunks_skipped

    @property
    def coverage_fraction(self) -> float:
        """Fraction of visited descriptors actually scanned (1.0 clean)."""
        return self.trace.coverage_fraction

    @property
    def elapsed_s(self) -> float:
        return self.trace.final_elapsed_s

    def neighbor_ids(self) -> np.ndarray:
        """Descriptor ids of the result neighbors, best first (int64)."""
        return np.asarray([n.descriptor_id for n in self.neighbors], dtype=np.int64)


class ChunkSearcher:
    """Executes ranked chunk scans over one :class:`ChunkIndex`."""

    def __init__(
        self,
        index: ChunkIndex,
        cost_model: CostModel = PAPER_2005_COST_MODEL,
        rank_by: str = RANK_BY_CENTROID,
        prune: bool = True,
        router: Optional[CentroidRouter] = None,
    ):
        """``prune=True`` (default) activates the triangle-inequality chunk
        pruner: a visited chunk whose lower bound strictly exceeds the
        current k-th distance is charged and logged exactly as if scanned
        (results, traces, and simulated timestamps are bit-identical) but
        its store read and distance kernel are skipped on the host.

        ``router`` optionally supplies a prebuilt
        :class:`~repro.core.routing.CentroidRouter`; chunk ranking then
        probes its ``O(sqrt(C))`` centroid groups lazily instead of
        scanning all ``C`` centroids per query, preserving the exact scan
        order and completion-proof values.
        """
        if rank_by not in (RANK_BY_CENTROID, RANK_BY_LOWER_BOUND):
            raise ValueError(f"unknown ranking rule {rank_by!r}")
        if router is not None and router.n_chunks != index.n_chunks:
            raise ValueError(
                f"router covers {router.n_chunks} chunks, "
                f"index has {index.n_chunks}"
            )
        self.index = index
        self.cost_model = cost_model
        self.rank_by = rank_by
        self.prune = bool(prune)
        self.router = router
        # Cached per-index arrays used by every query.
        self._centroids = index.centroid_matrix()
        self._radii = index.radius_vector()
        self._counts = index.descriptor_counts()
        self._pages = index.page_counts()

    # -- ownership -----------------------------------------------------------

    def close(self) -> None:
        """Release the underlying index (and its chunk reader)."""
        self.index.close()

    def __enter__(self) -> "ChunkSearcher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- ranking -------------------------------------------------------------

    def rank_chunks(self, query: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
        """Rank all chunks for a query.

        Returns ``(order, suffix_min_lower_bound)`` where ``order[r]`` is
        the chunk id at rank ``r`` and ``suffix_min_lower_bound[r]`` is the
        smallest lower bound among chunks at rank ``r`` or later — the
        quantity the completion proof compares against the k-th distance
        after ``r`` chunks were read.
        """
        order, suffix_min, _ = self._rank_arrays(query)
        return order, suffix_min

    def _rank_arrays(
        self, query: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """``(order, suffix_min, ranked_lower_bounds)`` for one query —
        the full ranking plus the per-rank lower bounds the pruner tests
        against the k-th distance."""
        centroid_d = np.sqrt(squared_distances(query, self._centroids))
        lower_bounds = np.maximum(0.0, centroid_d - self._radii)
        key = centroid_d if self.rank_by == RANK_BY_CENTROID else lower_bounds
        order = np.lexsort((np.arange(key.shape[0]), key))
        ranked_bounds = lower_bounds[order]
        # suffix_min[r] = min lower bound over ranks >= r.
        suffix_min = np.minimum.accumulate(ranked_bounds[::-1])[::-1]
        return order, suffix_min, ranked_bounds

    # -- search ----------------------------------------------------------------

    def search(
        self,
        query: np.ndarray,
        k: int = 30,
        stop_rule: Optional[StopRule] = None,
        true_neighbor_ids: Optional[Sequence[int]] = None,
        faults: Optional[FaultInjector] = None,
        query_index: int = 0,
    ) -> SearchResult:
        """Run one query.

        Parameters
        ----------
        query:
            The query descriptor, shape ``(d,)``.
        k:
            Neighbors to return (the paper uses 30 throughout).
        stop_rule:
            Early-termination policy; defaults to
            :class:`~repro.core.stop_rules.ExactCompletion` (run until the
            exactness proof fires).
        true_neighbor_ids:
            Optional ground-truth ids for this query.  When given, every
            trace event records how many true neighbors the intermediate
            result already holds — the paper's quality measurement.
        faults:
            Optional fault injector enabling *degraded execution*: chunk
            reads may fail (injected or real), are retried with backoff
            charged to the simulated clock, and are skipped once retries
            run out — the query finishes regardless.  With a zero-rate
            plan the search is bit-identical to ``faults=None``.  Without
            an injector, real storage errors propagate as before.
        query_index:
            Stable identifier of this query within its workload — the
            fault plan's decision key, so runs reproduce independently
            of execution order or engine.
        """
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.shape[0] != self.index.dimensions:
            raise ValueError(
                f"query has {query.shape[0]} dims, index has {self.index.dimensions}"
            )
        if not np.all(np.isfinite(query)):
            raise ValueError("query contains NaN or infinite components")
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        stop_rule = stop_rule if stop_rule is not None else ExactCompletion()
        truth = (
            frozenset(int(i) for i in true_neighbor_ids)
            if true_neighbor_ids is not None
            else None
        )

        stream = None
        if self.router is not None:
            stream = self.router.stream(query, self.rank_by)
            order_list: List[int] = []
            lb_list: List[float] = []
            suffix_list: List[float] = []
            n_ranks = self.index.n_chunks
        else:
            order, suffix_min, ranked_lb = self._rank_arrays(query)
            order_list = order.tolist()
            lb_list = ranked_lb.tolist()
            suffix_list = suffix_min.tolist()
            n_ranks = len(order_list)
        simulator = self.cost_model.simulator()
        start_s = simulator.start_query(self.index.n_chunks, self.index.index_bytes)
        trace = SearchTrace(start_elapsed_s=start_s)
        neighbors = NeighborSet(k)
        chunk_cache = self.cost_model.chunk_cache
        prune = self.prune

        stop_reason = "exhausted"
        completed = False
        degraded = False
        exhausted = True
        chunks_pruned = 0
        rank0 = 0
        while True:
            if stream is not None:
                emitted = stream.next()
                if emitted is None:
                    break
                chunk_id, lb = emitted
            else:
                if rank0 >= n_ranks:
                    break
                chunk_id = order_list[rank0]
                lb = lb_list[rank0]
            page_offset = self.index.metas[chunk_id].page_offset
            # The pruning bound: a chunk whose lower bound strictly exceeds
            # the current k-th distance cannot admit any candidate (ties
            # must still be scanned — an equal-distance, smaller-id
            # descriptor would enter the neighbor set).  kth is +inf until
            # k neighbors are known, so pruning never fires early.
            prunable = prune and lb > neighbors.kth_distance
            ids = vectors = None
            if faults is None:
                outcome = OK_OUTCOME
                if not prunable:
                    payload = (
                        chunk_cache.peek_payload(page_offset)
                        if chunk_cache is not None
                        else None
                    )
                    if payload is not None:
                        ids, vectors = payload  # type: ignore[misc]
                    else:
                        ids, vectors = self.index.read_chunk(chunk_id)
            else:
                # Degraded execution needs the chunk's *readability* even
                # when pruning would skip the scan: the fault outcome (and
                # therefore the timing and trace) depends on it.
                payload = (
                    chunk_cache.peek_payload(page_offset)
                    if chunk_cache is not None
                    else None
                )
                if payload is not None:
                    ids, vectors = payload  # type: ignore[misc]
                    readable = True
                else:
                    try:
                        ids, vectors = self.index.read_chunk(chunk_id)
                        readable = True
                    except CorruptFileError:
                        ids = vectors = None
                        readable = False
                outcome = faults.outcome(
                    query_index,
                    chunk_id,
                    int(self._pages[chunk_id]),
                    readable=readable,
                )

            if outcome.ok:
                elapsed = simulator.process_chunk(
                    int(self._pages[chunk_id]),
                    int(self._counts[chunk_id]),
                    page_offset=page_offset,
                    extra_io_s=outcome.extra_io_s,
                )
                if chunk_cache is not None and ids is not None:
                    # Share the promoted contents across queries; attach
                    # only sticks while the chunk is simulated-resident.
                    chunk_cache.attach(
                        page_offset,
                        (
                            np.asarray(ids, dtype=np.int64),
                            np.ascontiguousarray(vectors, dtype=np.float64),
                        ),
                    )
                if prunable:
                    chunks_pruned += 1
                else:
                    assert vectors is not None and ids is not None
                    distances = np.sqrt(squared_distances(query, vectors))
                    neighbors.update(distances, ids)
            else:
                # Degraded execution: every retry failed; the chunk is
                # skipped, its attempts charged as pure I/O time.
                elapsed = simulator.skip_chunk(outcome.extra_io_s)
                degraded = True

            matches = -1
            if truth is not None:
                matches = neighbors.true_match_count(truth)
            trace.append(
                TraceEvent(
                    chunk_id=chunk_id,
                    rank=rank0 + 1,
                    elapsed_s=elapsed,
                    n_descriptors=int(self._counts[chunk_id]),
                    neighbors_found=len(neighbors),
                    kth_distance=neighbors.kth_distance,
                    true_matches=matches,
                    skipped=not outcome.ok,
                    fault=outcome.kind,
                    retries=outcome.retries,
                )
            )

            if stream is not None:
                remaining_lb = stream.exact_remaining_lb()
            else:
                remaining_lb = (
                    float(suffix_list[rank0 + 1])
                    if rank0 + 1 < n_ranks
                    else math.inf
                )
            progress = SearchProgress(
                chunks_read=rank0 + 1,
                elapsed_s=elapsed,
                neighbors_found=len(neighbors),
                kth_distance=neighbors.kth_distance,
                remaining_lower_bound=remaining_lb,
            )
            # Completion proof: k found and no remaining chunk can help.
            # It still bounds the *remaining* chunks when some were
            # skipped, so the scan stops either way — but a degraded run
            # can never claim exactness (a skipped chunk may have held a
            # true neighbor).
            if neighbors.is_full and progress.completion_proven:
                stop_reason = "completed" if not degraded else "proof-degraded"
                completed = not degraded
                exhausted = False
                break
            reason = stop_rule.check(progress)
            if reason is not None:
                stop_reason = reason
                exhausted = False
                break
            rank0 += 1
        if exhausted:
            # All chunks read without the proof firing early: the result is
            # nevertheless exact (there is nothing left to read) — unless
            # skipped chunks left holes in the scan.
            completed = not degraded

        return SearchResult(
            neighbors=neighbors.sorted(),
            trace=trace,
            stop_reason=stop_reason,
            completed=completed,
            degraded=degraded,
            chunks_pruned=chunks_pruned,
        )
