"""Coarse centroid routing: sub-linear chunk ranking with an exactness
certificate.

The paper's searcher ranks *all* ``C`` chunk centroids for every query —
an ``O(C·d)`` prefix that dominates query start-up once indexes reach the
ROADMAP's production scale.  This module clusters the centroids themselves
(a small deterministic k-means, built once at index time) into
``G ≈ sqrt(C)`` groups, so a query probes ``O(G·d)`` group centers first
and expands a group into its members only when the scan order actually
reaches it.

Exactness is preserved, not approximated:

* **Order.**  A group's members can only be emitted once no *unexpanded*
  group could still contain an earlier-ranked chunk.  For a group ``g``
  with center ``z_g``, every member ``m`` satisfies (triangle inequality)
  ``d(q, c_m) >= d(q, z_g) - max_m d(c_m, z_g)``, so the right-hand side
  is an optimistic bound on any key inside ``g``; members are emitted in
  ``(key, chunk_id)`` heap order exactly as the flat
  ``lexsort((ids, key))`` of the full ranking would emit them, ties
  expanding the group first.
* **Remaining lower bound.**  The completion proof needs the *exact*
  minimum of ``max(0, d(q, c_m) - r_m)`` over all unscanned chunks.
  ``max(0, d(q, z_g) - max_m (d(c_m, z_g) + r_m))`` lower-bounds every
  member of an unexpanded group, so the stream can certify the remainder
  lazily: if the best expanded-but-unscanned bound is already <= every
  unexpanded group's bound it *is* the exact minimum; otherwise the
  blocking group is expanded and the test repeats.  The value returned is
  bit-equal to the flat ranking's suffix minimum — it is the minimum of
  the same floats — so stop rules and ``SearchProgress`` consumers see
  identical numbers.

Member distances are computed with the direct-form kernel
(:func:`~repro.core.distance.squared_distances`), whose row results do not
depend on which subset of rows is evaluated — the property that makes the
lazily expanded keys bit-identical to a full sequential ranking pass.
"""

from __future__ import annotations

import heapq
import math
from typing import List, Optional, Tuple

import numpy as np

from .distance import pairwise_squared_distances, squared_distances

__all__ = ["CentroidRouter", "RouterStream"]

_RANK_KEYS = ("centroid", "lower_bound")


class CentroidRouter:
    """Chunk centroids clustered into coarse groups for routed ranking.

    Build one per index (:meth:`build` / :meth:`from_index`) and pass it to
    ``ChunkSearcher``/``BatchChunkSearcher``; every query then opens a
    :class:`RouterStream` over the groups.  The router stores only
    geometry — group centers, members, and two per-group slack terms — and
    is immutable after construction, so one instance is safely shared by
    any number of queries, engines, and worker threads.

    Clustering quality affects only *speed* (how many groups a query
    expands); any partition of the chunks yields exact results, because
    every emission and certification decision is guarded by the triangle
    inequality bounds above.
    """

    def __init__(
        self,
        centers: np.ndarray,
        member_ids: List[np.ndarray],
        member_centroids: List[np.ndarray],
        member_radii: List[np.ndarray],
        key_slack: np.ndarray,
        lb_slack: np.ndarray,
        seed: int,
    ):
        self.centers = centers
        self.member_ids = member_ids
        self.member_centroids = member_centroids
        self.member_radii = member_radii
        self.key_slack = key_slack
        self.lb_slack = lb_slack
        self.seed = int(seed)
        self.n_chunks = int(sum(ids.shape[0] for ids in member_ids))

    @property
    def n_groups(self) -> int:
        return self.centers.shape[0]

    @classmethod
    def build(
        cls,
        centroids: np.ndarray,
        radii: np.ndarray,
        n_groups: Optional[int] = None,
        seed: int = 0,
        iterations: int = 8,
    ) -> "CentroidRouter":
        """Cluster chunk centroids with a small deterministic k-means.

        ``n_groups`` defaults to ``ceil(sqrt(C))`` — the probe count that
        balances the group scan against expected expansions.  The whole
        build is a pure function of ``(centroids, radii, n_groups, seed,
        iterations)``: seeded center initialization, argmin assignment
        (ties to the lowest group id), and empty clusters keeping their
        previous center.
        """
        centroids = np.ascontiguousarray(centroids, dtype=np.float64)
        radii = np.asarray(radii, dtype=np.float64).reshape(-1)
        if centroids.ndim != 2 or centroids.shape[0] == 0:
            raise ValueError("router needs a (n_chunks, d) centroid matrix")
        if radii.shape[0] != centroids.shape[0]:
            raise ValueError(
                f"got {radii.shape[0]} radii for {centroids.shape[0]} centroids"
            )
        if iterations < 1:
            raise ValueError("k-means needs at least one iteration")
        n_chunks = centroids.shape[0]
        if n_groups is None:
            n_groups = int(math.ceil(math.sqrt(n_chunks)))
        n_groups = max(1, min(int(n_groups), n_chunks))

        rng = np.random.default_rng(seed)
        picks = np.sort(rng.choice(n_chunks, size=n_groups, replace=False))
        centers = centroids[picks].copy()
        assign = np.zeros(n_chunks, dtype=np.intp)
        for _ in range(iterations):
            d2 = pairwise_squared_distances(centroids, centers)
            assign = np.argmin(d2, axis=1)
            for g in range(n_groups):
                members = assign == g
                if np.any(members):
                    centers[g] = centroids[members].mean(axis=0)

        member_ids: List[np.ndarray] = []
        member_centroids: List[np.ndarray] = []
        member_radii: List[np.ndarray] = []
        key_slack = np.zeros(n_groups, dtype=np.float64)
        lb_slack = np.zeros(n_groups, dtype=np.float64)
        for g in range(n_groups):
            ids = np.flatnonzero(assign == g).astype(np.int64)
            member_ids.append(ids)
            member_centroids.append(centroids[ids])
            member_radii.append(radii[ids])
            if ids.shape[0]:
                spread = np.sqrt(squared_distances(centers[g], centroids[ids]))
                key_slack[g] = float(spread.max())
                lb_slack[g] = float((spread + radii[ids]).max())
        return cls(
            centers=centers,
            member_ids=member_ids,
            member_centroids=member_centroids,
            member_radii=member_radii,
            key_slack=key_slack,
            lb_slack=lb_slack,
            seed=seed,
        )

    @classmethod
    def from_index(
        cls,
        index: "object",
        n_groups: Optional[int] = None,
        seed: int = 0,
        iterations: int = 8,
    ) -> "CentroidRouter":
        """Build from a :class:`~repro.core.chunk_index.ChunkIndex`."""
        return cls.build(
            index.centroid_matrix(),  # type: ignore[attr-defined]
            index.radius_vector(),  # type: ignore[attr-defined]
            n_groups=n_groups,
            seed=seed,
            iterations=iterations,
        )

    def stream(self, query: np.ndarray, rank_by: str = "centroid") -> "RouterStream":
        """Open one query's routed ranking stream."""
        if rank_by not in _RANK_KEYS:
            raise ValueError(f"unknown ranking rule {rank_by!r}")
        return RouterStream(self, query, rank_by)


class RouterStream:
    """Lazy, exact-order chunk emission for one query.

    ``next()`` yields ``(chunk_id, lower_bound)`` in precisely the order
    the flat ``lexsort((ids, key))`` ranking would, expanding centroid
    groups only when the scan front reaches them;
    ``exact_remaining_lb()`` resolves the exact minimum lower bound over
    every unemitted chunk (the completion-proof threshold), expanding
    further groups only when certification demands it.
    """

    def __init__(self, router: CentroidRouter, query: np.ndarray, rank_by: str):
        self._router = router
        self._query = np.asarray(query, dtype=np.float64).reshape(-1)
        self._rank_by = rank_by
        center_d = np.sqrt(squared_distances(self._query, router.centers))
        slack = router.key_slack if rank_by == "centroid" else router.lb_slack
        key_bound = np.maximum(0.0, center_d - slack)
        lb_bound = np.maximum(0.0, center_d - router.lb_slack)
        n_groups = router.n_groups
        self._expanded = [False] * n_groups
        # (optimistic key bound, group) — gates member emission order.
        self._group_heap: List[Tuple[float, int]] = [
            (float(key_bound[g]), g) for g in range(n_groups)
        ]
        heapq.heapify(self._group_heap)
        # (optimistic lower bound, group) — gates certification.
        self._group_lb_heap: List[Tuple[float, int]] = [
            (float(lb_bound[g]), g) for g in range(n_groups)
        ]
        heapq.heapify(self._group_lb_heap)
        # Expanded, unemitted members: scan order and lower-bound order.
        self._member_heap: List[Tuple[float, int, float]] = []
        self._lb_heap: List[Tuple[float, int]] = []
        self._emitted: "set[int]" = set()
        self._n_remaining = router.n_chunks
        self.groups_expanded = 0

    # -- internals -----------------------------------------------------------

    def _expand(self, group: int) -> None:
        router = self._router
        self._expanded[group] = True
        self.groups_expanded += 1
        ids = router.member_ids[group]
        if not ids.shape[0]:
            return
        d = np.sqrt(squared_distances(self._query, router.member_centroids[group]))
        lbs = np.maximum(0.0, d - router.member_radii[group])
        keys = d if self._rank_by == "centroid" else lbs
        member_heap = self._member_heap
        lb_heap = self._lb_heap
        for i in range(ids.shape[0]):
            chunk_id = int(ids[i])
            lb = float(lbs[i])
            heapq.heappush(member_heap, (float(keys[i]), chunk_id, lb))
            heapq.heappush(lb_heap, (lb, chunk_id))

    def _top_unexpanded(
        self, heap: List[Tuple[float, int]]
    ) -> Optional[Tuple[float, int]]:
        while heap and self._expanded[heap[0][1]]:
            heapq.heappop(heap)
        return heap[0] if heap else None

    # -- the stream ----------------------------------------------------------

    @property
    def exhausted(self) -> bool:
        return self._n_remaining == 0

    def next(self) -> Optional[Tuple[int, float]]:
        """``(chunk_id, lower_bound)`` of the next chunk in exact scan
        order, or ``None`` when every chunk has been emitted."""
        while True:
            top = self._top_unexpanded(self._group_heap)
            member_heap = self._member_heap
            if member_heap and (top is None or member_heap[0][0] < top[0]):
                # No unexpanded group can hold an earlier (key, id) pair:
                # their keys are all >= the group bound >= this key.  Ties
                # with a bound fall through to expansion first, preserving
                # the id tie-break of the flat lexsort.
                _, chunk_id, lb = heapq.heappop(member_heap)
                self._emitted.add(chunk_id)
                self._n_remaining -= 1
                return chunk_id, lb
            if top is None:
                return None
            heapq.heappop(self._group_heap)
            self._expand(top[1])

    # repro: exact
    def exact_remaining_lb(self) -> float:
        """Exact minimum lower bound over every unemitted chunk.

        Bit-equal to the flat ranking's suffix minimum at the same scan
        position (it is the minimum of the same float values); ``inf``
        once the stream is exhausted.
        """
        lb_heap = self._lb_heap
        emitted = self._emitted
        while True:
            while lb_heap and lb_heap[0][1] in emitted:
                heapq.heappop(lb_heap)
            best = lb_heap[0][0] if lb_heap else math.inf
            top = self._top_unexpanded(self._group_lb_heap)
            if top is None or best <= top[0]:
                # Every member of every unexpanded group has a lower bound
                # >= its group bound >= best, so best is the exact minimum.
                return best
            heapq.heappop(self._group_lb_heap)
            self._expand(top[1])
