"""Approximation-controlled stop rules from the related work.

The paper's section 6 surveys stop criteria beyond "n chunks" and "time
budget":

* **AC-NN** (Ciaccia & Patella, ICDE 2000): a user-set relative error
  ``epsilon`` — stop once no unread chunk can contain a descriptor closer
  than ``kth_distance / (1 + epsilon)``.  The returned k-th neighbor is
  then provably within a factor ``(1 + epsilon)`` of the true k-th
  distance.
* **PAC-NN** (same paper): *probably approximately correct* — combine the
  epsilon test with a confidence parameter ``delta``: stop as soon as the
  estimated probability that a remaining descriptor beats the relaxed
  bound falls below ``delta``.  The probability comes from a sampled
  distance distribution collected at index build time.
* **VA-BND** (Weber & Böhm, EDBT 2000): the same relaxation with
  ``epsilon`` *estimated empirically* by sampling database vectors rather
  than set by the user; :func:`estimate_epsilon` implements that
  estimator and feeds the rule.

These integrate with the chunk search as ordinary
:class:`~repro.core.stop_rules.StopRule` objects, consuming the
``remaining_lower_bound`` the searcher already maintains.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional

import numpy as np

from .dataset import DescriptorCollection
from .distance import squared_distances
from .stop_rules import SearchProgress, StopRule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .chunk_index import ChunkIndex

__all__ = [
    "EpsilonApproximation",
    "PacApproximation",
    "DistanceDistribution",
    "estimate_epsilon",
]


class EpsilonApproximation(StopRule):
    """AC-NN stop rule: (1 + epsilon)-approximate completion.

    Stops once ``k`` neighbors are known and every unread chunk's lower
    bound exceeds ``kth_distance / (1 + epsilon)``.  With ``epsilon = 0``
    this degenerates to the exact completion proof.
    """

    def __init__(self, epsilon: float, k: int):
        if epsilon < 0 or math.isnan(epsilon):
            raise ValueError(f"epsilon must be non-negative, got {epsilon}")
        if k < 1:
            raise ValueError("k must be positive")
        self.epsilon = float(epsilon)
        self.k = int(k)

    # repro: approximate
    def check(self, progress: SearchProgress) -> Optional[str]:
        if progress.neighbors_found < self.k:
            return None
        if math.isinf(progress.kth_distance):
            return None
        relaxed = progress.kth_distance / (1.0 + self.epsilon)
        if progress.remaining_lower_bound > relaxed:
            return f"epsilon-approx({self.epsilon:g})"
        return None

    def __repr__(self) -> str:
        return f"EpsilonApproximation(epsilon={self.epsilon!r}, k={self.k})"


class DistanceDistribution:
    """Empirical distribution of query-to-descriptor distances.

    Sampled once per collection (typically at index build time); the PAC
    rule uses its CDF to estimate how likely a *single random* descriptor
    is to fall under a distance threshold, and from that the probability
    that any of ``n_remaining`` descriptors does.
    """

    def __init__(self, samples: np.ndarray):
        samples = np.asarray(samples, dtype=np.float64).reshape(-1)
        if samples.size == 0:
            raise ValueError("need at least one distance sample")
        if np.any(samples < 0) or np.any(~np.isfinite(samples)):
            raise ValueError("distance samples must be finite and non-negative")
        self._sorted = np.sort(samples)

    @classmethod
    def sample(
        cls,
        collection: DescriptorCollection,
        n_query_samples: int = 50,
        n_point_samples: int = 200,
        seed: int = 0,
    ) -> "DistanceDistribution":
        """Estimate the distribution from random query/point pairs."""
        if len(collection) < 2:
            raise ValueError("need at least two descriptors to sample distances")
        rng = np.random.default_rng(seed)
        n = len(collection)
        queries = collection.vectors[
            rng.choice(n, size=min(n_query_samples, n), replace=False)
        ].astype(np.float64)
        points = collection.vectors[
            rng.choice(n, size=min(n_point_samples, n), replace=False)
        ]
        distances = []
        for query in queries:
            distances.append(np.sqrt(squared_distances(query, points)))
        return cls(np.concatenate(distances))

    def cdf(self, distance: float) -> float:
        """P(a random descriptor lies within ``distance`` of a query)."""
        if distance < 0:
            return 0.0
        rank = np.searchsorted(self._sorted, distance, side="right")
        return float(rank) / self._sorted.size

    def probability_any_within(self, distance: float, n_remaining: int) -> float:
        """P(at least one of ``n_remaining`` i.i.d. descriptors is within
        ``distance``) = 1 - (1 - cdf)^n."""
        if n_remaining <= 0:
            return 0.0
        p = self.cdf(distance)
        if p >= 1.0:
            return 1.0
        return 1.0 - (1.0 - p) ** n_remaining


class PacApproximation(StopRule):
    """PAC-NN stop rule: stop when the probability that any remaining
    descriptor improves the (relaxed) k-th distance drops below ``delta``.

    Needs to know how many descriptors remain unread; the searcher does
    not expose that directly, so the rule tracks the total and subtracts
    an estimate from ``chunks_read`` times the mean chunk size — callers
    construct it per index via :meth:`for_index`.
    """

    def __init__(
        self,
        epsilon: float,
        delta: float,
        distribution: DistanceDistribution,
        total_descriptors: int,
        mean_chunk_size: float,
    ):
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if not 0.0 < delta < 1.0:
            raise ValueError("delta must be in (0, 1)")
        if total_descriptors < 1 or mean_chunk_size <= 0:
            raise ValueError("invalid index statistics")
        self.epsilon = float(epsilon)
        self.delta = float(delta)
        self.distribution = distribution
        self.total_descriptors = int(total_descriptors)
        self.mean_chunk_size = float(mean_chunk_size)

    @classmethod
    def for_index(
        cls,
        index: "ChunkIndex",
        collection: "DescriptorCollection",
        epsilon: float = 0.1,
        delta: float = 0.05,
        seed: int = 0,
    ) -> "EarlyTerminationRule":
        """Build the rule for one chunk index, sampling the distance
        distribution from its backing collection."""
        distribution = DistanceDistribution.sample(collection, seed=seed)
        counts = index.descriptor_counts()
        return cls(
            epsilon=epsilon,
            delta=delta,
            distribution=distribution,
            total_descriptors=int(counts.sum()),
            mean_chunk_size=float(counts.mean()),
        )

    # repro: approximate
    def check(self, progress: SearchProgress) -> Optional[str]:
        if math.isinf(progress.kth_distance):
            return None
        remaining = self.total_descriptors - int(
            round(progress.chunks_read * self.mean_chunk_size)
        )
        if remaining <= 0:
            return None  # the exactness proof will fire anyway
        relaxed = progress.kth_distance / (1.0 + self.epsilon)
        p_improve = self.distribution.probability_any_within(relaxed, remaining)
        if p_improve < self.delta:
            return f"pac({self.epsilon:g},{self.delta:g})"
        return None

    def __repr__(self) -> str:
        return (
            f"PacApproximation(epsilon={self.epsilon!r}, delta={self.delta!r}, "
            f"total={self.total_descriptors})"
        )


# repro: approximate
def estimate_epsilon(
    collection: DescriptorCollection,
    k: int,
    n_query_samples: int = 20,
    quantile: float = 0.9,
    seed: int = 0,
) -> float:
    """VA-BND's empirical epsilon: sample database vectors as queries and
    measure how much the k-th distance typically shrinks between an early
    candidate set and the true answer.

    Concretely: for sampled queries, compare the k-th distance among a
    random 10 % candidate subset with the true k-th distance, and return
    the ``quantile`` of the relative slack — a data-driven relaxation
    factor such that stopping early rarely misses by more.
    """
    if len(collection) < 10 * k:
        raise ValueError("collection too small to estimate epsilon")
    rng = np.random.default_rng(seed)
    n = len(collection)
    slacks = []
    for _ in range(n_query_samples):
        query = collection.vectors[rng.integers(n)].astype(np.float64)
        d = np.sqrt(squared_distances(query, collection.vectors))
        true_kth = np.partition(d, k)[k]
        subset = rng.choice(n, size=max(k + 1, n // 10), replace=False)
        early_kth = np.partition(d[subset], k)[k]
        if true_kth > 0:
            slacks.append(early_kth / true_kth - 1.0)
    if not slacks:
        return 0.0
    return float(max(0.0, np.quantile(slacks, quantile)))
