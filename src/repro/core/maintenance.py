"""Incremental chunk-index maintenance.

The paper builds its chunk indexes offline and notes (section 7) a
220-million-descriptor collection on the horizon — at which point full
rebuilds stop being an option.  This module maintains a chunk index under
inserts and deletes while preserving the invariants the search relies on:

* every chunk's stored centroid is the exact mean and its radius the exact
  minimum bounding radius of its current members (the completion proof is
  unsound otherwise);
* chunk payloads stay within their allocated page extents when possible —
  a chunk whose new payload still fits its pages is updated in place, one
  that outgrows them is *relocated* to fresh pages at the end of the file
  (the classic slotted-file strategy), leaving a hole;
* chunks that grow beyond ``split_factor`` times the target size are split
  by a 2-means pass, and chunks that shrink below ``merge_fraction`` of it
  are merged into the chunk with the nearest centroid.

The maintainer tracks fragmentation (dead pages left by relocations) so
callers can decide when a compaction/rebuild pays off.

For the durable streaming index (:mod:`repro.core.ingest`) each chunk
additionally carries its *provenance* relative to the last persisted base
generation: ``base_ref`` names the base chunk it descends from and
``origins[i]`` is the base row member ``i`` came from (``-1`` for rows
inserted since).  Within a chunk the base-origin members always form a
prefix in base-row order followed by the appended members in insertion
order — inserts append, deletes remove in place, splits keep subsets in
row order, and merged-in members are recorded as appends — which is
exactly the tombstone-bitmap + append-segment shape the checkpoint
writes, and what makes a recovered chunk's member order (hence its
``numpy.mean`` centroid) bit-identical to the uncrashed process.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from ..storage.pages import PageGeometry
from ..storage.records import RecordCodec
from .chunk import ChunkMeta, summarize_members
from .chunk_index import ChunkIndex, InMemoryChunkStore
from .distance import squared_distances

__all__ = ["ChunkIndexMaintainer", "MaintenanceStats", "ChunkSnapshot"]


@dataclasses.dataclass
class MaintenanceStats:
    """Counters describing maintenance activity since construction."""

    inserts: int = 0
    deletes: int = 0
    splits: int = 0
    merges: int = 0
    relocations: int = 0
    dead_pages: int = 0


class ChunkSnapshot(NamedTuple):
    """Externalized state of one maintained chunk.

    Returned by :meth:`ChunkIndexMaintainer.snapshot` (the checkpoint
    writer consumes it) and accepted by
    :meth:`ChunkIndexMaintainer.restore` (recovery rebuilds from it).

    Attributes
    ----------
    ids:
        Member descriptor ids, in chunk order.
    vectors:
        ``(n, d)`` float32 member matrix, rows parallel to ``ids``.
    origins:
        Per-member base-row provenance: the row index within base chunk
        ``base_ref`` the member came from, ``-1`` for members appended
        since the base generation.
    base_ref:
        Base-generation chunk id this chunk descends from (``-1`` none).
    delta_file:
        Name of the delta segment currently representing this chunk's
        divergence from base (``None`` when clean or never checkpointed).
    dirty:
        True when the chunk mutated since the last checkpoint.
    page_offset / page_count:
        The chunk's logical page extent.
    """

    ids: Tuple[int, ...]
    vectors: np.ndarray
    origins: Tuple[int, ...]
    base_ref: int
    delta_file: Optional[str]
    dirty: bool
    page_offset: int
    page_count: int


class _MutableChunk:
    """Mutable chunk state: parallel id/vector arrays plus page extent."""

    __slots__ = (
        "ids",
        "vectors",
        "page_offset",
        "page_count",
        "base_ref",
        "origins",
        "dirty",
        "delta_file",
    )

    def __init__(
        self,
        ids: Sequence[int],
        vectors: Sequence[np.ndarray],
        page_offset: int,
        page_count: int,
        base_ref: int = -1,
        origins: Optional[Sequence[int]] = None,
        dirty: bool = True,
        delta_file: Optional[str] = None,
    ):
        self.ids: List[int] = list(int(i) for i in ids)
        self.vectors: List[np.ndarray] = [
            np.asarray(v, dtype=np.float32) for v in vectors
        ]
        self.page_offset = int(page_offset)
        self.page_count = int(page_count)
        self.base_ref = int(base_ref)
        self.origins: List[int] = (
            [int(o) for o in origins] if origins is not None else [-1] * len(self.ids)
        )
        if len(self.origins) != len(self.ids):
            raise ValueError("origins must parallel ids")
        self.dirty = bool(dirty)
        self.delta_file = delta_file

    def matrix(self) -> np.ndarray:
        """Pending vectors stacked into an ``(n, d)`` float32 matrix."""
        return np.vstack([v[np.newaxis, :] for v in self.vectors])

    def __len__(self) -> int:
        return len(self.ids)


class ChunkIndexMaintainer:
    """Maintains a chunk index under inserts and deletes.

    Parameters
    ----------
    index:
        The starting index; its contents are copied, the original is not
        mutated.
    target_chunk_size:
        Size around which split/merge thresholds are set; defaults to the
        index's current mean chunk size.
    split_factor:
        A chunk splits once it exceeds ``split_factor * target``.
    merge_fraction:
        A chunk merges away once it falls below ``merge_fraction * target``
        (and more than one chunk remains).
    """

    def __init__(
        self,
        index: ChunkIndex,
        target_chunk_size: Optional[int] = None,
        split_factor: float = 2.0,
        merge_fraction: float = 0.2,
        geometry: Optional[PageGeometry] = None,
    ):
        counts = index.descriptor_counts()
        target = int(
            target_chunk_size
            if target_chunk_size is not None
            else max(1, round(float(counts.mean())))
        )
        chunks: List[_MutableChunk] = []
        next_page = 0
        for chunk_id in range(index.n_chunks):
            ids, vectors = index.read_chunk(chunk_id)
            meta = index.metas[chunk_id]
            chunks.append(
                _MutableChunk(ids, vectors, meta.page_offset, meta.page_count)
            )
            next_page = max(next_page, meta.page_offset + meta.page_count)
        self._setup(
            dimensions=index.dimensions,
            chunks=chunks,
            next_page=next_page,
            target_chunk_size=target,
            split_factor=split_factor,
            merge_fraction=merge_fraction,
            geometry=geometry,
            stats=MaintenanceStats(),
        )

    def _setup(
        self,
        dimensions: int,
        chunks: List[_MutableChunk],
        next_page: int,
        target_chunk_size: int,
        split_factor: float,
        merge_fraction: float,
        geometry: Optional[PageGeometry],
        stats: MaintenanceStats,
    ) -> None:
        if split_factor <= 1.0:
            raise ValueError("split_factor must exceed 1")
        if not 0.0 <= merge_fraction < 1.0:
            raise ValueError("merge_fraction must be in [0, 1)")
        if target_chunk_size < 1:
            raise ValueError("target chunk size must be positive")
        self.dimensions = int(dimensions)
        self.geometry = geometry or PageGeometry()
        self._codec = RecordCodec(self.dimensions)
        self.target_chunk_size = int(target_chunk_size)
        self.split_factor = float(split_factor)
        self.merge_fraction = float(merge_fraction)
        self.stats = stats
        self._chunks = chunks
        self._next_page = int(next_page)
        self._chunk_of_id: Dict[int, int] = {}
        for position, chunk in enumerate(self._chunks):
            for descriptor_id in chunk.ids:
                if descriptor_id in self._chunk_of_id:
                    raise ValueError(f"duplicate descriptor id {descriptor_id}")
                self._chunk_of_id[descriptor_id] = position
        # Cached summaries, recomputed lazily per dirty chunk.
        self._centroids = np.stack(
            [summarize_members(c.matrix())[0] for c in self._chunks]
        )

    @classmethod
    def restore(
        cls,
        dimensions: int,
        chunks: Sequence[ChunkSnapshot],
        next_page: int,
        target_chunk_size: int,
        split_factor: float = 2.0,
        merge_fraction: float = 0.2,
        geometry: Optional[PageGeometry] = None,
        stats: Optional[MaintenanceStats] = None,
    ) -> "ChunkIndexMaintainer":
        """Rebuild a maintainer from externalized chunk state.

        This is the recovery entry point: chunk contents, member order,
        provenance, page extents and the allocation frontier are restored
        exactly, so subsequent operations (WAL replay included) take the
        same code path — and produce bit-identical state — as the process
        that wrote the checkpoint.
        """
        mutable = [
            _MutableChunk(
                snap.ids,
                [row for row in np.asarray(snap.vectors, dtype=np.float32)],
                snap.page_offset,
                snap.page_count,
                base_ref=snap.base_ref,
                origins=snap.origins,
                dirty=snap.dirty,
                delta_file=snap.delta_file,
            )
            for snap in chunks
        ]
        self = object.__new__(cls)
        self._setup(
            dimensions=dimensions,
            chunks=mutable,
            next_page=next_page,
            target_chunk_size=target_chunk_size,
            split_factor=split_factor,
            merge_fraction=merge_fraction,
            geometry=geometry,
            stats=stats if stats is not None else MaintenanceStats(),
        )
        return self

    # -- bookkeeping helpers ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._chunk_of_id)

    @property
    def n_chunks(self) -> int:
        return len(self._chunks)

    @property
    def next_page(self) -> int:
        """The page-allocation frontier (first never-allocated page)."""
        return self._next_page

    def __contains__(self, descriptor_id: int) -> bool:
        return int(descriptor_id) in self._chunk_of_id

    def _pages_needed(self, n_descriptors: int) -> int:
        return self.geometry.pages_for(n_descriptors * self._codec.record_bytes)

    def _reextent(self, position: int) -> None:
        """Keep the chunk in place if it fits; otherwise relocate it to
        fresh pages at the end of the file."""
        chunk = self._chunks[position]
        needed = self._pages_needed(len(chunk))
        if needed <= chunk.page_count:
            return
        self.stats.relocations += 1
        self.stats.dead_pages += chunk.page_count
        chunk.page_offset = self._next_page
        chunk.page_count = needed
        self._next_page += needed

    def _refresh_centroid(self, position: int) -> None:
        self._centroids[position] = self._chunks[position].matrix().astype(
            np.float64
        ).mean(axis=0)

    # -- operations ----------------------------------------------------------------

    def insert(self, descriptor_id: int, vector: np.ndarray) -> int:
        """Insert one descriptor into the chunk with the nearest centroid;
        returns the chunk position it landed in (pre-split)."""
        descriptor_id = int(descriptor_id)
        if descriptor_id in self._chunk_of_id:
            raise ValueError(f"descriptor id {descriptor_id} already present")
        vector = np.asarray(vector, dtype=np.float32).reshape(-1)
        if vector.shape[0] != self.dimensions:
            raise ValueError("vector dimensionality mismatch")

        d2 = squared_distances(vector.astype(np.float64), self._centroids)
        position = int(np.argmin(d2))
        chunk = self._chunks[position]
        chunk.ids.append(descriptor_id)
        chunk.vectors.append(vector)
        chunk.origins.append(-1)
        chunk.dirty = True
        self._chunk_of_id[descriptor_id] = position
        self._refresh_centroid(position)
        self._reextent(position)
        self.stats.inserts += 1

        if len(chunk) > self.split_factor * self.target_chunk_size:
            self._split(position)
        return position

    def delete(self, descriptor_id: int) -> None:
        """Remove one descriptor; small survivors merge into a neighbor."""
        descriptor_id = int(descriptor_id)
        position = self._chunk_of_id.pop(descriptor_id, None)
        if position is None:
            raise KeyError(f"descriptor id {descriptor_id} not in index")
        chunk = self._chunks[position]
        row = chunk.ids.index(descriptor_id)
        chunk.ids.pop(row)
        chunk.vectors.pop(row)
        chunk.origins.pop(row)
        chunk.dirty = True
        self.stats.deletes += 1

        if len(chunk) == 0:
            self._drop_chunk(position)
            return
        self._refresh_centroid(position)
        if (
            len(chunk) < self.merge_fraction * self.target_chunk_size
            and self.n_chunks > 1
        ):
            self._merge_away(position)

    def _split(self, position: int) -> None:
        """2-means split of an oversized chunk; the halves reuse the old
        extent if they fit, else relocate."""
        chunk = self._chunks[position]
        matrix = chunk.matrix().astype(np.float64)
        # Seed with the two most distant members of a sample.
        n = matrix.shape[0]
        centers = matrix[[0, int(np.argmax(squared_distances(matrix[0], matrix)))]]
        assignment = np.zeros(n, dtype=np.intp)
        for _ in range(6):
            d0 = squared_distances(centers[0], matrix)
            d1 = squared_distances(centers[1], matrix)
            new_assignment = (d1 < d0).astype(np.intp)
            if np.array_equal(new_assignment, assignment):
                break
            assignment = new_assignment
            for c in (0, 1):
                members = matrix[assignment == c]
                if members.shape[0]:
                    centers[c] = members.mean(axis=0)
        if assignment.all() or not assignment.any():
            half = n // 2
            assignment = np.asarray([0] * half + [1] * (n - half))

        keep_rows = np.flatnonzero(assignment == 0)
        move_rows = np.flatnonzero(assignment == 1)
        # The moved half loses its base linkage: its members become plain
        # appends of a new (baseless) chunk, keeping the origin-prefix
        # invariant trivially true for both halves.
        moved = _MutableChunk(
            [chunk.ids[i] for i in move_rows],
            [chunk.vectors[i] for i in move_rows],
            page_offset=self._next_page,
            page_count=self._pages_needed(move_rows.size),
        )
        self._next_page += moved.page_count
        chunk.ids = [chunk.ids[i] for i in keep_rows]
        chunk.vectors = [chunk.vectors[i] for i in keep_rows]
        chunk.origins = [chunk.origins[i] for i in keep_rows]
        chunk.dirty = True

        new_position = len(self._chunks)
        self._chunks.append(moved)
        for descriptor_id in moved.ids:
            self._chunk_of_id[descriptor_id] = new_position
        self._centroids = np.vstack(
            [self._centroids, moved.matrix().astype(np.float64).mean(axis=0)]
        )
        self._refresh_centroid(position)
        self._reextent(position)
        self.stats.splits += 1

    def _drop_chunk(self, position: int) -> None:
        self.stats.dead_pages += self._chunks[position].page_count
        self._chunks.pop(position)
        self._centroids = np.delete(self._centroids, position, axis=0)
        for descriptor_id, chunk_position in self._chunk_of_id.items():
            if chunk_position > position:
                self._chunk_of_id[descriptor_id] = chunk_position - 1

    def _merge_away(self, position: int) -> None:
        """Fold an undersized chunk into the nearest other chunk."""
        chunk = self._chunks[position]
        d2 = squared_distances(self._centroids[position], self._centroids)
        d2[position] = np.inf
        other = int(np.argmin(d2))
        target = self._chunks[other]
        target.ids.extend(chunk.ids)
        target.vectors.extend(chunk.vectors)
        # Merged-in members count as appends of the surviving chunk:
        # their link to the dissolved chunk's base is severed, so the
        # surviving chunk's origin-prefix invariant is preserved.
        target.origins.extend([-1] * len(chunk.ids))
        target.dirty = True
        for descriptor_id in chunk.ids:
            self._chunk_of_id[descriptor_id] = other
        self._refresh_centroid(other)
        self._reextent(other)
        self.stats.merges += 1
        # Drop AFTER rewiring so position shifts are applied consistently.
        chunk.ids = []
        chunk.vectors = []
        chunk.origins = []
        self._drop_chunk(position)

    # -- checkpoint support ------------------------------------------------------

    def snapshot(self, position: int) -> ChunkSnapshot:
        """Externalized state of one chunk (checkpoint writer input)."""
        chunk = self._chunks[position]
        return ChunkSnapshot(
            ids=tuple(chunk.ids),
            vectors=chunk.matrix(),
            origins=tuple(chunk.origins),
            base_ref=chunk.base_ref,
            delta_file=chunk.delta_file,
            dirty=chunk.dirty,
            page_offset=chunk.page_offset,
            page_count=chunk.page_count,
        )

    def dirty_positions(self) -> List[int]:
        """Positions of chunks mutated since their last checkpoint."""
        return [i for i, chunk in enumerate(self._chunks) if chunk.dirty]

    def checkpointed(self, position: int, delta_file: Optional[str]) -> None:
        """Record that a checkpoint captured this chunk's current state.

        ``delta_file`` names the segment now representing its divergence
        from base (``None`` when the chunk is byte-identical to its base
        chunk and needs no segment).
        """
        chunk = self._chunks[position]
        chunk.delta_file = delta_file
        chunk.dirty = False

    def rebase(self) -> None:
        """Declare the current state a fresh base generation.

        Called after a full rebuild persisted every chunk: each chunk
        becomes a clean base chunk (``base_ref`` = its position, every
        member a base row, no delta segment).
        """
        for position, chunk in enumerate(self._chunks):
            chunk.base_ref = position
            chunk.origins = list(range(len(chunk)))
            chunk.dirty = False
            chunk.delta_file = None

    # -- export -----------------------------------------------------------------------

    @property
    def fragmentation(self) -> float:
        """Dead pages as a fraction of the file's page span."""
        if self._next_page == 0:
            return 0.0
        return self.stats.dead_pages / self._next_page

    def compact(self) -> int:
        """Rewrite all chunk extents sequentially, reclaiming dead pages.

        The on-disk equivalent is a single sequential rewrite of the chunk
        file (cheap relative to the random I/O the holes would cost).
        Returns the number of pages reclaimed.  Only extents move — chunk
        *contents* are untouched, so clean chunks stay clean (the manifest
        records the new extents at the next checkpoint).
        """
        before = self._next_page
        next_page = 0
        for chunk in self._chunks:
            chunk.page_offset = next_page
            chunk.page_count = self._pages_needed(len(chunk))
            next_page += chunk.page_count
        self._next_page = next_page
        self.stats.dead_pages = 0
        return before - next_page

    def to_index(self, name: str = "maintained") -> ChunkIndex:
        """Materialize the current state as a searchable :class:`ChunkIndex`.

        Note: :class:`~repro.core.search.ChunkSearcher` caches index
        summaries at construction, so build a fresh searcher after each
        maintenance batch.
        """
        metas: List[ChunkMeta] = []
        contents: List[Tuple[np.ndarray, np.ndarray]] = []
        for chunk_id, chunk in enumerate(self._chunks):
            matrix = chunk.matrix()
            centroid, radius = summarize_members(matrix)
            metas.append(
                ChunkMeta(
                    chunk_id=chunk_id,
                    centroid=centroid,
                    radius=radius,
                    n_descriptors=len(chunk),
                    page_offset=chunk.page_offset,
                    page_count=chunk.page_count,
                )
            )
            contents.append((np.asarray(chunk.ids, dtype=np.int64), matrix))
        return ChunkIndex(
            metas=metas,
            store=InMemoryChunkStore(contents),
            dimensions=self.dimensions,
            name=name,
        )
