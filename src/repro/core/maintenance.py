"""Incremental chunk-index maintenance.

The paper builds its chunk indexes offline and notes (section 7) a
220-million-descriptor collection on the horizon — at which point full
rebuilds stop being an option.  This module maintains a chunk index under
inserts and deletes while preserving the invariants the search relies on:

* every chunk's stored centroid is the exact mean and its radius the exact
  minimum bounding radius of its current members (the completion proof is
  unsound otherwise);
* chunk payloads stay within their allocated page extents when possible —
  a chunk whose new payload still fits its pages is updated in place, one
  that outgrows them is *relocated* to fresh pages at the end of the file
  (the classic slotted-file strategy), leaving a hole;
* chunks that grow beyond ``split_factor`` times the target size are split
  by a 2-means pass, and chunks that shrink below ``merge_fraction`` of it
  are merged into the chunk with the nearest centroid.

The maintainer tracks fragmentation (dead pages left by relocations) so
callers can decide when a compaction/rebuild pays off.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..storage.pages import PageGeometry
from ..storage.records import RecordCodec
from .chunk import ChunkMeta, summarize_members
from .chunk_index import ChunkIndex, InMemoryChunkStore
from .distance import squared_distances

__all__ = ["ChunkIndexMaintainer", "MaintenanceStats"]


@dataclasses.dataclass
class MaintenanceStats:
    """Counters describing maintenance activity since construction."""

    inserts: int = 0
    deletes: int = 0
    splits: int = 0
    merges: int = 0
    relocations: int = 0
    dead_pages: int = 0


class _MutableChunk:
    """Mutable chunk state: parallel id/vector arrays plus page extent."""

    __slots__ = ("ids", "vectors", "page_offset", "page_count")

    def __init__(
        self,
        ids: Sequence[int],
        vectors: Sequence[np.ndarray],
        page_offset: int,
        page_count: int,
    ):
        self.ids: List[int] = list(int(i) for i in ids)
        self.vectors: List[np.ndarray] = [
            np.asarray(v, dtype=np.float32) for v in vectors
        ]
        self.page_offset = int(page_offset)
        self.page_count = int(page_count)

    def matrix(self) -> np.ndarray:
        """Pending vectors stacked into an ``(n, d)`` float32 matrix."""
        return np.vstack([v[np.newaxis, :] for v in self.vectors])

    def __len__(self) -> int:
        return len(self.ids)


class ChunkIndexMaintainer:
    """Maintains a chunk index under inserts and deletes.

    Parameters
    ----------
    index:
        The starting index; its contents are copied, the original is not
        mutated.
    target_chunk_size:
        Size around which split/merge thresholds are set; defaults to the
        index's current mean chunk size.
    split_factor:
        A chunk splits once it exceeds ``split_factor * target``.
    merge_fraction:
        A chunk merges away once it falls below ``merge_fraction * target``
        (and more than one chunk remains).
    """

    def __init__(
        self,
        index: ChunkIndex,
        target_chunk_size: Optional[int] = None,
        split_factor: float = 2.0,
        merge_fraction: float = 0.2,
        geometry: Optional[PageGeometry] = None,
    ):
        if split_factor <= 1.0:
            raise ValueError("split_factor must exceed 1")
        if not 0.0 <= merge_fraction < 1.0:
            raise ValueError("merge_fraction must be in [0, 1)")
        self.dimensions = index.dimensions
        self.geometry = geometry or PageGeometry()
        self._codec = RecordCodec(self.dimensions)
        counts = index.descriptor_counts()
        self.target_chunk_size = int(
            target_chunk_size
            if target_chunk_size is not None
            else max(1, round(float(counts.mean())))
        )
        if self.target_chunk_size < 1:
            raise ValueError("target chunk size must be positive")
        self.split_factor = float(split_factor)
        self.merge_fraction = float(merge_fraction)
        self.stats = MaintenanceStats()

        self._chunks: List[_MutableChunk] = []
        self._next_page = 0
        for chunk_id in range(index.n_chunks):
            ids, vectors = index.read_chunk(chunk_id)
            meta = index.metas[chunk_id]
            self._chunks.append(
                _MutableChunk(ids, vectors, meta.page_offset, meta.page_count)
            )
            self._next_page = max(self._next_page, meta.page_offset + meta.page_count)
        self._chunk_of_id: Dict[int, int] = {}
        for position, chunk in enumerate(self._chunks):
            for descriptor_id in chunk.ids:
                if descriptor_id in self._chunk_of_id:
                    raise ValueError(f"duplicate descriptor id {descriptor_id}")
                self._chunk_of_id[descriptor_id] = position
        # Cached summaries, recomputed lazily per dirty chunk.
        self._centroids = np.stack(
            [summarize_members(c.matrix())[0] for c in self._chunks]
        )

    # -- bookkeeping helpers ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._chunk_of_id)

    @property
    def n_chunks(self) -> int:
        return len(self._chunks)

    def _pages_needed(self, n_descriptors: int) -> int:
        return self.geometry.pages_for(n_descriptors * self._codec.record_bytes)

    def _reextent(self, position: int) -> None:
        """Keep the chunk in place if it fits; otherwise relocate it to
        fresh pages at the end of the file."""
        chunk = self._chunks[position]
        needed = self._pages_needed(len(chunk))
        if needed <= chunk.page_count:
            return
        self.stats.relocations += 1
        self.stats.dead_pages += chunk.page_count
        chunk.page_offset = self._next_page
        chunk.page_count = needed
        self._next_page += needed

    def _refresh_centroid(self, position: int) -> None:
        self._centroids[position] = self._chunks[position].matrix().astype(
            np.float64
        ).mean(axis=0)

    # -- operations ----------------------------------------------------------------

    def insert(self, descriptor_id: int, vector: np.ndarray) -> int:
        """Insert one descriptor into the chunk with the nearest centroid;
        returns the chunk position it landed in (pre-split)."""
        descriptor_id = int(descriptor_id)
        if descriptor_id in self._chunk_of_id:
            raise ValueError(f"descriptor id {descriptor_id} already present")
        vector = np.asarray(vector, dtype=np.float32).reshape(-1)
        if vector.shape[0] != self.dimensions:
            raise ValueError("vector dimensionality mismatch")

        d2 = squared_distances(vector.astype(np.float64), self._centroids)
        position = int(np.argmin(d2))
        chunk = self._chunks[position]
        chunk.ids.append(descriptor_id)
        chunk.vectors.append(vector)
        self._chunk_of_id[descriptor_id] = position
        self._refresh_centroid(position)
        self._reextent(position)
        self.stats.inserts += 1

        if len(chunk) > self.split_factor * self.target_chunk_size:
            self._split(position)
        return position

    def delete(self, descriptor_id: int) -> None:
        """Remove one descriptor; small survivors merge into a neighbor."""
        descriptor_id = int(descriptor_id)
        position = self._chunk_of_id.pop(descriptor_id, None)
        if position is None:
            raise KeyError(f"descriptor id {descriptor_id} not in index")
        chunk = self._chunks[position]
        row = chunk.ids.index(descriptor_id)
        chunk.ids.pop(row)
        chunk.vectors.pop(row)
        self.stats.deletes += 1

        if len(chunk) == 0:
            self._drop_chunk(position)
            return
        self._refresh_centroid(position)
        if (
            len(chunk) < self.merge_fraction * self.target_chunk_size
            and self.n_chunks > 1
        ):
            self._merge_away(position)

    def _split(self, position: int) -> None:
        """2-means split of an oversized chunk; the halves reuse the old
        extent if they fit, else relocate."""
        chunk = self._chunks[position]
        matrix = chunk.matrix().astype(np.float64)
        # Seed with the two most distant members of a sample.
        n = matrix.shape[0]
        centers = matrix[[0, int(np.argmax(squared_distances(matrix[0], matrix)))]]
        assignment = np.zeros(n, dtype=np.intp)
        for _ in range(6):
            d0 = squared_distances(centers[0], matrix)
            d1 = squared_distances(centers[1], matrix)
            new_assignment = (d1 < d0).astype(np.intp)
            if np.array_equal(new_assignment, assignment):
                break
            assignment = new_assignment
            for c in (0, 1):
                members = matrix[assignment == c]
                if members.shape[0]:
                    centers[c] = members.mean(axis=0)
        if assignment.all() or not assignment.any():
            half = n // 2
            assignment = np.asarray([0] * half + [1] * (n - half))

        keep_rows = np.flatnonzero(assignment == 0)
        move_rows = np.flatnonzero(assignment == 1)
        moved = _MutableChunk(
            [chunk.ids[i] for i in move_rows],
            [chunk.vectors[i] for i in move_rows],
            page_offset=self._next_page,
            page_count=self._pages_needed(move_rows.size),
        )
        self._next_page += moved.page_count
        chunk.ids = [chunk.ids[i] for i in keep_rows]
        chunk.vectors = [chunk.vectors[i] for i in keep_rows]

        new_position = len(self._chunks)
        self._chunks.append(moved)
        for descriptor_id in moved.ids:
            self._chunk_of_id[descriptor_id] = new_position
        self._centroids = np.vstack(
            [self._centroids, moved.matrix().astype(np.float64).mean(axis=0)]
        )
        self._refresh_centroid(position)
        self._reextent(position)
        self.stats.splits += 1

    def _drop_chunk(self, position: int) -> None:
        self.stats.dead_pages += self._chunks[position].page_count
        self._chunks.pop(position)
        self._centroids = np.delete(self._centroids, position, axis=0)
        for descriptor_id, chunk_position in self._chunk_of_id.items():
            if chunk_position > position:
                self._chunk_of_id[descriptor_id] = chunk_position - 1

    def _merge_away(self, position: int) -> None:
        """Fold an undersized chunk into the nearest other chunk."""
        chunk = self._chunks[position]
        d2 = squared_distances(self._centroids[position], self._centroids)
        d2[position] = np.inf
        other = int(np.argmin(d2))
        target = self._chunks[other]
        target.ids.extend(chunk.ids)
        target.vectors.extend(chunk.vectors)
        for descriptor_id in chunk.ids:
            self._chunk_of_id[descriptor_id] = other
        self._refresh_centroid(other)
        self._reextent(other)
        self.stats.merges += 1
        # Drop AFTER rewiring so position shifts are applied consistently.
        chunk.ids = []
        chunk.vectors = []
        self._drop_chunk(position)

    # -- export -----------------------------------------------------------------------

    @property
    def fragmentation(self) -> float:
        """Dead pages as a fraction of the file's page span."""
        if self._next_page == 0:
            return 0.0
        return self.stats.dead_pages / self._next_page

    def compact(self) -> int:
        """Rewrite all chunk extents sequentially, reclaiming dead pages.

        The on-disk equivalent is a single sequential rewrite of the chunk
        file (cheap relative to the random I/O the holes would cost).
        Returns the number of pages reclaimed.
        """
        before = self._next_page
        next_page = 0
        for chunk in self._chunks:
            chunk.page_offset = next_page
            chunk.page_count = self._pages_needed(len(chunk))
            next_page += chunk.page_count
        self._next_page = next_page
        self.stats.dead_pages = 0
        return before - next_page

    def to_index(self, name: str = "maintained") -> ChunkIndex:
        """Materialize the current state as a searchable :class:`ChunkIndex`.

        Note: :class:`~repro.core.search.ChunkSearcher` caches index
        summaries at construction, so build a fresh searcher after each
        maintenance batch.
        """
        metas: List[ChunkMeta] = []
        contents: List[Tuple[np.ndarray, np.ndarray]] = []
        for chunk_id, chunk in enumerate(self._chunks):
            matrix = chunk.matrix()
            centroid, radius = summarize_members(matrix)
            metas.append(
                ChunkMeta(
                    chunk_id=chunk_id,
                    centroid=centroid,
                    radius=radius,
                    n_descriptors=len(chunk),
                    page_offset=chunk.page_offset,
                    page_count=chunk.page_count,
                )
            )
            contents.append((np.asarray(chunk.ids, dtype=np.int64), matrix))
        return ChunkIndex(
            metas=metas,
            store=InMemoryChunkStore(contents),
            dimensions=self.dimensions,
            name=name,
        )
