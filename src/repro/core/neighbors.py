"""Bounded nearest-neighbor result set.

The search algorithm of the paper (section 4.3) keeps "the current set of
neighbors" while scanning chunks and needs two operations on it:

* bulk update with all descriptors of a freshly processed chunk, and
* the distance to the current k-th neighbor, which drives the exact
  completion test (stop when the minimum distance to the next chunk exceeds
  the distance to the k-th neighbor).

:class:`NeighborSet` implements this as a bounded max-heap keyed on
distance, with deterministic tie-breaking on descriptor id so that
intermediate-result precision measurements are reproducible.
"""

from __future__ import annotations

import heapq
import math
from typing import AbstractSet, List, Sequence, Tuple

import numpy as np

__all__ = ["Neighbor", "NeighborSet", "merge_neighbor_lists"]


class Neighbor(Tuple[float, int]):
    """A ``(distance, descriptor_id)`` pair, ordered by distance then id."""

    __slots__ = ()

    def __new__(cls, distance: float, descriptor_id: int) -> "Neighbor":
        return tuple.__new__(cls, (float(distance), int(descriptor_id)))

    @property
    def distance(self) -> float:
        return self[0]

    @property
    def descriptor_id(self) -> int:
        return self[1]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Neighbor(distance={self[0]:.6g}, id={self[1]})"


# repro: exact
def merge_neighbor_lists(
    lists: Sequence[Sequence[Neighbor]], k: int
) -> List[Neighbor]:
    """Exact k-way merge of per-partition top-k lists.

    Because ``(distance, id)`` is a total order, the exact top-k of a
    descriptor set is *unique*, and the top-k of a union is contained in
    the union of the parts' top-k's.  Merging the per-partition exact
    lists therefore reproduces the single-node exact answer bit for bit
    — the property the sharded scatter-gather coordinator relies on.

    Duplicate descriptor ids (e.g. both answers of a hedged pair, which
    executed the *same* partition) are collapsed to their best entry, so
    the merge is idempotent.  Empty inputs merge cleanly: fewer than
    ``k`` total candidates yield a shorter list, never an error — a
    partial merge is the honest answer under shard loss.
    """
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    best: "dict[int, Neighbor]" = {}
    for part in lists:
        for neighbor in part:
            entry = Neighbor(neighbor[0], neighbor[1])
            held = best.get(entry.descriptor_id)
            if held is None or entry < held:
                best[entry.descriptor_id] = entry
    return sorted(best.values())[:k]


class NeighborSet:
    """The k best neighbors seen so far.

    Maintains a max-heap of at most ``k`` entries so that the worst current
    neighbor can be evicted in O(log k) when a better candidate arrives.
    Candidates that tie the current worst on distance are admitted only if
    their id is smaller, matching the deterministic ordering used by
    :func:`repro.core.distance.top_k_smallest` for ground truth.
    """

    def __init__(self, k: int):
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        # Heap entries are (-distance, -id): Python's min-heap then pops the
        # largest distance first, with larger ids evicted before smaller
        # ones on distance ties.
        self._heap: List[Tuple[float, int]] = []

    # -- inspection ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def is_full(self) -> bool:
        """True once k neighbors have been collected."""
        return len(self._heap) >= self.k

    @property
    def kth_distance(self) -> float:
        """Distance to the current worst retained neighbor.

        Infinite while the set is not yet full, so every candidate is
        admitted during warm-up and the completion test never fires early.
        """
        if not self.is_full:
            return math.inf
        return -self._heap[0][0]

    def ids(self) -> np.ndarray:
        """Descriptor ids (int64) of the current neighbors, best first."""
        return np.asarray([n.descriptor_id for n in self.sorted()], dtype=np.int64)

    def sorted(self) -> List[Neighbor]:
        """Current neighbors ordered by (distance, id), best first."""
        items = sorted((-d, -i) for d, i in self._heap)
        return [Neighbor(d, i) for d, i in items]

    # -- updates ------------------------------------------------------------

    def _admits(self, distance: float, descriptor_id: int) -> bool:
        if not self.is_full:
            return True
        worst_d, worst_neg_id = -self._heap[0][0], self._heap[0][1]
        if distance < worst_d:
            return True
        return distance == worst_d and -descriptor_id > worst_neg_id

    # repro: exact
    def offer(self, distance: float, descriptor_id: int) -> bool:
        """Offer one candidate; returns True if it entered the set."""
        distance = float(distance)
        descriptor_id = int(descriptor_id)
        if not self._admits(distance, descriptor_id):
            return False
        entry = (-distance, -descriptor_id)
        if self.is_full:
            heapq.heapreplace(self._heap, entry)
        else:
            heapq.heappush(self._heap, entry)
        return True

    # repro: exact
    def update(self, distances: np.ndarray, descriptor_ids: np.ndarray) -> int:
        """Bulk-offer a chunk's worth of candidates; returns how many entered.

        This is the per-chunk hot path: it first filters candidates against
        the current k-th distance with one vectorized comparison, then walks
        only the survivors through the heap.
        """
        distances = np.asarray(distances, dtype=np.float64)
        descriptor_ids = np.asarray(descriptor_ids, dtype=np.int64)
        if distances.shape != descriptor_ids.shape:
            raise ValueError(
                f"distances shape {distances.shape} != ids shape {descriptor_ids.shape}"
            )
        threshold = self.kth_distance
        if math.isinf(threshold):
            candidates = np.arange(distances.shape[0])
        else:
            candidates = np.nonzero(distances <= threshold)[0]
        if candidates.size == 0:
            return 0
        # Process best-first so the threshold tightens as fast as possible.
        order = candidates[
            np.lexsort((descriptor_ids[candidates], distances[candidates]))
        ]
        admitted = 0
        for row in order:
            d = float(distances[row])
            if d > self.kth_distance:
                break  # sorted ascending: nothing later can enter
            if self.offer(d, int(descriptor_ids[row])):
                admitted += 1
        return admitted

    # repro: exact
    def merge(self, other: "NeighborSet") -> None:
        """Fold another neighbor set into this one."""
        for neighbor in other.sorted():
            self.offer(neighbor.distance, neighbor.descriptor_id)

    # -- set-style helpers ----------------------------------------------------

    def id_set(self) -> set:
        """Current neighbor ids as a Python set (for precision counting)."""
        return {-i for _, i in self._heap}

    def true_match_count(self, truth: AbstractSet[int]) -> int:
        """How many current neighbor ids appear in ``truth`` (a set).

        One C-level set intersection instead of a Python-level membership
        loop — this runs after every chunk of every query when ground truth
        is attached, for both the sequential and the batch search paths.
        """
        return len(self.id_set() & truth)

    def __contains__(self, descriptor_id: int) -> bool:
        return -int(descriptor_id) in {i for _, i in self._heap}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NeighborSet(k={self.k}, size={len(self)}, kth={self.kth_distance:.6g})"
