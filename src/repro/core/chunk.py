"""Chunk model.

A *chunk* is the unit of the paper's index architecture (section 4.2): a
group of descriptors stored contiguously on disk, padded to full disk
pages, and summarized in the index file by its centroid, its minimum
bounding radius, and its location in the chunk file.

Two layers are distinguished here:

* :class:`Chunk` — the logical chunk as produced by a chunk-forming
  strategy: the member rows of the source collection plus the derived
  centroid/radius summary.
* :class:`ChunkMeta` — the physical index entry: centroid, radius,
  descriptor count, and page extent in the chunk file.  This is what the
  search algorithm ranks and what :mod:`repro.storage.index_file`
  serializes.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Sequence

import numpy as np

from .dataset import DescriptorCollection
from .distance import squared_distances

__all__ = ["Chunk", "ChunkMeta", "ChunkSet", "summarize_members"]


def summarize_members(vectors: np.ndarray) -> "tuple[np.ndarray, float]":
    """Centroid and minimum bounding radius of a member matrix.

    The radius is the maximum Euclidean distance from the centroid to any
    member — the "minimum bounding radius" the paper stores per chunk so the
    search can lower-bound the distance to a chunk's contents.
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    if vectors.ndim != 2 or vectors.shape[0] == 0:
        raise ValueError("a chunk must contain at least one descriptor")
    centroid = vectors.mean(axis=0)
    radius = float(np.sqrt(squared_distances(centroid, vectors).max()))
    return centroid, radius


@dataclasses.dataclass
class Chunk:
    """A logical chunk: member rows of a collection plus its summary.

    Attributes
    ----------
    member_rows:
        Row positions into the source :class:`DescriptorCollection`.
    centroid:
        Mean of the member vectors (float64).
    radius:
        Minimum bounding radius around ``centroid``.
    """

    member_rows: np.ndarray
    centroid: np.ndarray
    radius: float

    @classmethod
    def from_rows(
        cls, collection: DescriptorCollection, member_rows: Sequence[int]
    ) -> "Chunk":
        """Build a chunk from row positions, deriving centroid and radius."""
        rows = np.asarray(member_rows, dtype=np.intp)
        if rows.size == 0:
            raise ValueError("a chunk must contain at least one descriptor")
        centroid, radius = summarize_members(collection.vectors[rows])
        return cls(member_rows=rows, centroid=centroid, radius=radius)

    def __len__(self) -> int:
        return int(self.member_rows.size)

    def member_ids(self, collection: DescriptorCollection) -> np.ndarray:
        """Descriptor ids (int64) of this chunk's members."""
        return collection.ids[self.member_rows]

    def contains_all_members(self, collection: DescriptorCollection) -> bool:
        """Invariant check: every member lies within ``radius`` of ``centroid``.

        A small epsilon absorbs float32->float64 rounding on the member
        vectors.
        """
        vectors = collection.vectors[self.member_rows]
        d2 = squared_distances(self.centroid, vectors)
        return bool(np.all(np.sqrt(d2) <= self.radius * (1 + 1e-9) + 1e-9))


@dataclasses.dataclass(frozen=True)
class ChunkMeta:
    """Index-file entry for one chunk (paper section 4.2).

    ``page_offset``/``page_count`` locate the chunk in the chunk file; they
    are filled in by the chunk-file writer.  ``chunk_id`` is the position of
    the entry, which by construction equals the position of the chunk in
    the chunk file ("the order of the entries in the index is identical to
    the order of the chunks in the chunk file").
    """

    chunk_id: int
    centroid: np.ndarray
    radius: float
    n_descriptors: int
    page_offset: int
    page_count: int

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "centroid", np.ascontiguousarray(self.centroid, dtype=np.float64)
        )
        if self.n_descriptors <= 0:
            raise ValueError("a chunk holds at least one descriptor")
        if self.radius < 0:
            raise ValueError("radius cannot be negative")
        if self.page_offset < 0 or self.page_count <= 0:
            raise ValueError("invalid page extent")

    def min_distance(self, query: np.ndarray) -> float:
        """Lower bound on the distance from ``query`` to any member.

        ``max(0, d(query, centroid) - radius)`` — this is "the rationale for
        storing the radii of chunks together with their centroids"
        (section 4.3): it proves when no unread chunk can improve the
        current k-th neighbor.
        """
        d = float(np.sqrt(squared_distances(query, self.centroid)[0]))
        return max(0.0, d - self.radius)

    def centroid_distance(self, query: np.ndarray) -> float:
        """Distance from ``query`` to the chunk centroid (the ranking key)."""
        return float(np.sqrt(squared_distances(query, self.centroid)[0]))


class ChunkSet:
    """An ordered list of logical chunks over one collection.

    This is the output contract of every chunk-forming strategy in
    :mod:`repro.chunking`: a partition (or sub-partition, when outliers were
    discarded) of the collection's rows.
    """

    def __init__(self, collection: DescriptorCollection, chunks: Sequence[Chunk]):
        self.collection = collection
        self.chunks: List[Chunk] = list(chunks)
        if not self.chunks:
            raise ValueError("a chunk set must contain at least one chunk")

    def __len__(self) -> int:
        return len(self.chunks)

    def __iter__(self) -> Iterator[Chunk]:
        return iter(self.chunks)

    def __getitem__(self, index: int) -> Chunk:
        return self.chunks[index]

    # -- statistics (these feed Table 1 and Figure 1) ----------------------

    def sizes(self) -> np.ndarray:
        """Descriptor count of every chunk, dtype int64."""
        return np.asarray([len(c) for c in self.chunks], dtype=np.int64)

    def total_descriptors(self) -> int:
        return int(self.sizes().sum())

    def average_size(self) -> float:
        """Average descriptors per chunk (Table 1's "Descriptors per Chunk")."""
        return float(self.sizes().mean())

    def largest_sizes(self, n: int = 30) -> np.ndarray:
        """Sizes (int64) of the ``n`` largest chunks, descending (Figure 1)."""
        sizes = np.sort(self.sizes())[::-1]
        return sizes[:n]

    def radii(self) -> np.ndarray:
        """Minimum bounding radius of every chunk, dtype float64."""
        return np.asarray([c.radius for c in self.chunks], dtype=np.float64)

    # -- invariants ---------------------------------------------------------

    def is_partition(self) -> bool:
        """True if every collection row appears in exactly one chunk."""
        seen = np.concatenate([c.member_rows for c in self.chunks])
        if seen.size != len(self.collection):
            return False
        return bool(np.array_equal(np.sort(seen), np.arange(len(self.collection))))

    def covered_rows(self) -> np.ndarray:
        """Sorted unique rows (dtype intp) covered by any chunk."""
        return np.unique(np.concatenate([c.member_rows for c in self.chunks]))

    def validate(self) -> None:
        """Raise ``ValueError`` on any violated chunk invariant."""
        all_rows = np.concatenate([c.member_rows for c in self.chunks])
        if np.unique(all_rows).size != all_rows.size:
            raise ValueError("a descriptor row appears in more than one chunk")
        if all_rows.size and (all_rows.min() < 0 or all_rows.max() >= len(self.collection)):
            raise ValueError("chunk member rows out of collection bounds")
        for i, chunk in enumerate(self.chunks):
            if not chunk.contains_all_members(self.collection):
                raise ValueError(f"chunk {i}: member outside bounding radius")
