"""Batched execution of the approximate chunk search.

The paper's whole methodology is workload-shaped: every figure and table
comes from running hundreds of queries against the same chunk index.  The
sequential :class:`~repro.core.search.ChunkSearcher` re-ranks the centroids
and re-reads the same chunks once *per query*; this module amortizes that
work across a query batch while keeping each query's observable outcome —
neighbors, stop reason, trace, simulated elapsed time — identical to what
the sequential searcher produces:

* **vectorized ranking** — chunk ranking for the whole ``(q, d)`` batch is
  one :func:`~repro.core.distance.pairwise_squared_distances` call plus a
  batched lexsort, replacing ``q`` independent centroid scans;
* **coalesced chunk reads** — execution is scheduled chunk-major: within a
  batch each chunk is fetched from the store at most once (and its float32
  descriptor matrix promoted to float64 exactly once), then scanned against
  every query currently positioned on it with one ``(q_active, n_chunk)``
  kernel call;
* **per-query timing model** — every query owns its own
  :class:`~repro.simio.pipeline.PipelineSimulator`, so simulated time is
  charged per query exactly as the paper measures it: sharing wall-clock
  work across a batch never changes a simulated timestamp;
* **parallel wall-clock mode** — ``workers > 1`` shards the batch over a
  thread pool (the distance kernels release the GIL), which changes only
  how fast the host finishes, never the per-query results.

When the cost model carries a shared :class:`~repro.simio.cache.LruPageCache`
the simulated I/O charge of a chunk depends on the global order of page
touches, so the engine falls back to query-major execution (query 0 runs to
its stop, then query 1, ...) — the exact touch order of the sequential
loop — while still coalescing the *contents* reads through the batch cache.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..faults.injector import FaultInjector
from ..faults.plan import ChunkFaultOutcome
from ..parallel import resolve_workers, run_parallel, shard
from ..simio.calibration import PAPER_2005_COST_MODEL
from ..simio.pipeline import CostModel, PipelineSimulator
from ..storage.errors import CorruptFileError
from .chunk_index import ChunkIndex
from .distance import pairwise_squared_distances
from .neighbors import NeighborSet
from .routing import CentroidRouter, RouterStream
from .search import (
    RANK_BY_CENTROID,
    RANK_BY_LOWER_BOUND,
    SearchResult,
)
from .stop_rules import ExactCompletion, SearchProgress, StopRule
from .trace import SearchTrace, TraceEvent

__all__ = ["BatchChunkSearcher", "BatchSearchResult"]

#: The prune-run fast path materializes ``TraceEvent`` instances from
#: prebuilt value tuples; ``_make`` is the C-level tuple constructor, the
#: cheapest way to build one (see the ``TraceEvent`` docstring for why
#: the event type is a ``NamedTuple`` in the first place).
_EVENT_MAKE = TraceEvent._make


@dataclasses.dataclass
class BatchSearchResult:
    """Per-query :class:`SearchResult` list plus batch-level conveniences.

    The batch engine's contract is that ``results[i]`` is what
    ``ChunkSearcher.search(queries[i], ...)`` would have returned; this
    wrapper only adds aggregate views, it never merges query outcomes.
    """

    results: List[SearchResult]

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[SearchResult]:
        return iter(self.results)

    def __getitem__(self, i: int) -> SearchResult:
        return self.results[i]

    def neighbor_ids_matrix(self) -> np.ndarray:
        """``(n_queries, k_found)`` int64 id matrix, padded with -1 for
        queries that found fewer neighbors than the widest result."""
        if not self.results:
            return np.empty((0, 0), dtype=np.int64)
        width = max(len(r.neighbors) for r in self.results)
        out = np.full((len(self.results), width), -1, dtype=np.int64)
        for row, result in enumerate(self.results):
            ids = result.neighbor_ids()
            out[row, : ids.shape[0]] = ids
        return out

    def stop_reasons(self) -> List[str]:
        return [r.stop_reason for r in self.results]

    def elapsed_s(self) -> np.ndarray:
        """Simulated per-query elapsed seconds (float64; the paper's clock)."""
        return np.asarray([r.elapsed_s for r in self.results], dtype=np.float64)

    def traces(self) -> List[SearchTrace]:
        return [r.trace for r in self.results]

    @property
    def total_chunks_read(self) -> int:
        return int(sum(r.chunks_read for r in self.results))

    @property
    def total_chunks_pruned(self) -> int:
        """Visited chunks the pruner excused from scanning, batch-wide."""
        return int(sum(r.chunks_pruned for r in self.results))

    @property
    def mean_elapsed_s(self) -> float:
        return float(self.elapsed_s().mean()) if self.results else 0.0


class _QueryState:
    """Mutable per-query execution state inside one batch.

    The timing state is three floats replicating the
    :class:`~repro.simio.pipeline.PipelineSimulator` recurrence inline
    (``prev_read``/``prev_proc``/``drained`` are ``R[i-1]``/``C[i-1]``/
    ``C[i-2]``); ``simulator`` is only instantiated for shared-page-cache
    cost models, whose per-chunk I/O charge is stateful.
    """

    __slots__ = (
        "position",
        "fault_key",
        "query",
        "k",
        "order",
        "suffix_list",
        "lb_list",
        "stream",
        "n_ranks",
        "simulator",
        "prev_read",
        "prev_proc",
        "drained",
        "trace",
        "events",
        "neighbors",
        "n_found",
        "kth",
        "stop_rule",
        "truth",
        "matches",
        "rank0",
        "pruned",
        "stop_reason",
        "completed",
        "degraded",
        "done",
    )

    def __init__(
        self,
        position: int,
        query: np.ndarray,
        k: int,
        order: Optional[np.ndarray],
        suffix_min: Optional[np.ndarray],
        start_s: float,
        stop_rule: StopRule,
        truth: Optional[frozenset],
        simulator: Optional[PipelineSimulator] = None,
        fault_key: Optional[int] = None,
        ranked_lb: Optional[np.ndarray] = None,
        stream: Optional[RouterStream] = None,
    ):
        self.position = position
        self.fault_key = position if fault_key is None else fault_key
        self.query = query
        self.k = k
        if stream is None:
            assert order is not None and suffix_min is not None
            assert ranked_lb is not None
            # Plain Python lists: the execution loop touches one element
            # per event, where numpy scalar extraction would dominate.
            self.order = order.tolist()
            self.suffix_list = suffix_min.tolist()
            self.lb_list = ranked_lb.tolist()
            self.n_ranks = len(self.order)
        else:
            # Routed ranking: chunks arrive lazily from the stream; the
            # per-rank arrays are never materialized.
            self.order = []
            self.suffix_list = []
            self.lb_list = []
            self.n_ranks = 0
        self.stream = stream
        self.simulator = simulator
        self.prev_read = start_s
        self.prev_proc = start_s
        self.drained = start_s
        self.trace = SearchTrace(start_elapsed_s=start_s)
        self.events = self.trace.events
        self.neighbors = NeighborSet(k)
        # Mirrors of len(neighbors) / neighbors.kth_distance, refreshed
        # only when an update admits candidates.
        self.n_found = 0
        self.kth = math.inf
        self.stop_rule = stop_rule
        self.truth = truth
        # Match count after the latest chunk; valid whenever truth is set
        # because an empty neighbor set holds zero true neighbors.
        self.matches = 0 if truth is not None else -1
        self.rank0 = 0
        self.pruned = 0
        self.stop_reason = "exhausted"
        self.completed = False
        self.degraded = False
        self.done = False

    def pull_next(self) -> "Tuple[int, float]":
        """``(chunk_id, lower_bound)`` of the next chunk to visit.

        Array mode reads the precomputed rank arrays (without consuming —
        ``rank0`` advances when the event is applied); stream mode pops
        the router stream, whose emission *is* the visit."""
        if self.stream is None:
            rank0 = self.rank0
            return self.order[rank0], self.lb_list[rank0]
        emitted = self.stream.next()
        assert emitted is not None, "stream exhausted before state finished"
        return emitted

    def finish(self, stop_reason: str, completed: bool) -> None:
        self.stop_reason = stop_reason
        self.completed = completed
        self.done = True

    def to_result(self) -> SearchResult:
        return SearchResult(
            neighbors=self.neighbors.sorted(),
            trace=self.trace,
            stop_reason=self.stop_reason,
            completed=self.completed,
            degraded=self.degraded,
            chunks_pruned=self.pruned,
        )


class BatchChunkSearcher:
    """Executes a whole query batch against one :class:`ChunkIndex`.

    Construction mirrors :class:`~repro.core.search.ChunkSearcher` (same
    index, cost model, and ranking rule); :meth:`search_batch` is the batch
    counterpart of ``search``.
    """

    def __init__(
        self,
        index: ChunkIndex,
        cost_model: CostModel = PAPER_2005_COST_MODEL,
        rank_by: str = RANK_BY_CENTROID,
        prune: bool = True,
        router: Optional[CentroidRouter] = None,
    ):
        """``prune`` and ``router`` carry the same semantics as on
        :class:`~repro.core.search.ChunkSearcher`: the pruner skips the
        host-side scan of chunks whose lower bound strictly exceeds the
        current k-th distance (results, traces and simulated timestamps
        stay bit-identical), and a router replaces the full batched
        centroid ranking with lazy per-query group expansion."""
        if rank_by not in (RANK_BY_CENTROID, RANK_BY_LOWER_BOUND):
            raise ValueError(f"unknown ranking rule {rank_by!r}")
        if router is not None and router.n_chunks != index.n_chunks:
            raise ValueError(
                f"router covers {router.n_chunks} chunks, "
                f"index has {index.n_chunks}"
            )
        self.index = index
        self.cost_model = cost_model
        self.rank_by = rank_by
        self._prune = bool(prune)
        self.router = router
        self._centroids = index.centroid_matrix()
        self._radii = index.radius_vector()
        self._counts = index.descriptor_counts()
        self._pages = index.page_counts()
        self._centroid_sq_norms = index.centroid_sq_norm_vector()
        # Per-chunk scalars as plain Python values: the execution loop
        # touches these once per (query, chunk) event, where repeated
        # numpy indexing and cost-model calls would dominate.
        self._count_list = [int(c) for c in self._counts]
        self._page_list = [int(p) for p in self._pages]
        self._page_offsets = [meta.page_offset for meta in index.metas]
        self._io_cost = [
            cost_model.disk.random_read_time_s(p) for p in self._page_list
        ]
        self._cpu_cost = [
            cost_model.cpu.chunk_processing_time_s(c) for c in self._count_list
        ]
        # ``(io_s, cpu_s, n_descriptors)`` per chunk: the prune-run loop
        # reads all three per event, and one index plus an unpack beats
        # three list lookups.
        self._prune_cost = list(
            zip(self._io_cost, self._cpu_cost, self._count_list)
        )
        self._overlap = cost_model.overlap_io_cpu

    # -- ownership -----------------------------------------------------------

    def close(self) -> None:
        """Release the underlying index (and its chunk reader)."""
        self.index.close()

    def __enter__(self) -> "BatchChunkSearcher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- ranking -------------------------------------------------------------

    def rank_chunks_batch(
        self, queries: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Rank all chunks for every query in one shot.

        Returns ``(orders, suffix_min_lower_bounds)``, both of shape
        ``(n_queries, n_chunks)`` — row ``i`` is exactly what the
        sequential ``ChunkSearcher.rank_chunks`` computes for query ``i``:
        chunk ids in scan order and the running minimum lower bound over
        the not-yet-scanned suffix (the completion-proof threshold).
        """
        orders, suffix_min, _ = self._rank_full(queries)
        return orders, suffix_min

    def _rank_full(
        self, queries: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(orders, suffix_min, ranked_lower_bounds)`` — the public
        ranking plus the per-rank lower bounds the pruner compares
        against the k-th distance."""
        centroid_d = np.sqrt(
            pairwise_squared_distances(
                queries, self._centroids, points_sq_norms=self._centroid_sq_norms
            )
        )
        lower_bounds = np.maximum(0.0, centroid_d - self._radii[np.newaxis, :])
        key = centroid_d if self.rank_by == RANK_BY_CENTROID else lower_bounds
        columns = np.broadcast_to(
            np.arange(key.shape[1]), key.shape
        )
        # Batched lexsort: per row, ascending key with index tie-break —
        # the same (key, position) order the sequential lexsort produces.
        orders = np.lexsort((columns, key), axis=-1)
        ranked_bounds = np.take_along_axis(lower_bounds, orders, axis=1)
        suffix_min = np.minimum.accumulate(ranked_bounds[:, ::-1], axis=1)[:, ::-1]
        return orders, suffix_min, ranked_bounds

    # -- batch search --------------------------------------------------------

    def search_batch(
        self,
        queries: np.ndarray,
        k: int = 30,
        stop_rule: Optional[StopRule] = None,
        true_neighbor_ids: Optional[Sequence[Optional[Sequence[int]]]] = None,
        workers: int = 1,
        faults: Optional[FaultInjector] = None,
        query_indices: Optional[Sequence[int]] = None,
    ) -> BatchSearchResult:
        """Run every query of a batch; per-query outcomes match
        ``ChunkSearcher.search``.

        Parameters
        ----------
        queries:
            ``(n_queries, d)`` batch (a single ``(d,)`` vector is promoted).
        k:
            Neighbors per query (the paper uses 30 throughout).
        stop_rule:
            Early-termination policy shared by all queries; defaults to
            :class:`~repro.core.stop_rules.ExactCompletion`.  The shipped
            rules are stateless, so one instance can serve the whole batch.
        true_neighbor_ids:
            Optional per-query ground-truth id lists (``None`` entries skip
            match counting for that query), enabling the paper's
            intermediate-quality trace columns.
        workers:
            Thread count for wall-clock parallelism; 1 (default) runs
            in-thread.  Results and simulated times are identical at any
            worker count.  Ignored (forced to 1) when the cost model
            carries a shared page cache, whose simulated state depends on
            the global touch order.
        faults:
            Optional fault injector enabling degraded execution, exactly
            as in ``ChunkSearcher.search``.  The fault plan is keyed by a
            query's *position in this batch*, so ``results[i]`` matches
            ``ChunkSearcher.search(queries[i], ..., query_index=i)`` —
            faults included — regardless of engine or worker count.
        query_indices:
            Optional per-query fault-plan keys overriding the default
            batch positions — the ``query_index`` argument of
            ``ChunkSearcher.search``, batched.  A service running one
            query per call passes the query's stable workload index here
            so its fault draws match a whole-workload batch run.
        """
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim == 1:
            queries = queries[np.newaxis, :]
        if queries.ndim != 2:
            raise ValueError(f"queries must be a (n, d) matrix, got {queries.shape}")
        if queries.shape[0] == 0:
            return BatchSearchResult(results=[])
        if queries.shape[1] != self.index.dimensions:
            raise ValueError(
                f"queries have {queries.shape[1]} dims, "
                f"index has {self.index.dimensions}"
            )
        if not np.all(np.isfinite(queries)):
            raise ValueError("queries contain NaN or infinite components")
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        n_queries = queries.shape[0]
        if true_neighbor_ids is not None and len(true_neighbor_ids) != n_queries:
            raise ValueError(
                f"got {len(true_neighbor_ids)} ground-truth lists "
                f"for {n_queries} queries"
            )
        if query_indices is not None and len(query_indices) != n_queries:
            raise ValueError(
                f"got {len(query_indices)} query indices for {n_queries} queries"
            )
        stop_rule = stop_rule if stop_rule is not None else ExactCompletion()

        router = self.router
        if router is None:
            orders, suffix_mins, ranked_lbs = self._rank_full(queries)
        # Both cache flavors make the simulated I/O charge of a chunk a
        # function of the global touch order, so execution must follow the
        # sequential loop's exact order (query-major).
        shared_cache = (
            self.cost_model.cache is not None
            or self.cost_model.chunk_cache is not None
        )
        if not shared_cache:
            # The start-of-query charge (index read + ranking) is
            # query-independent; replicate start_query's arithmetic once
            # for the whole batch.
            batch_start_s = self.cost_model.disk.sequential_read_time_s(
                self.index.index_bytes
            )
            batch_start_s += self.cost_model.cpu.ranking_time_s(
                self.index.n_chunks
            )
        states = []
        for i in range(n_queries):
            simulator = None
            if shared_cache:
                simulator = self.cost_model.simulator()
                start_s = simulator.start_query(
                    self.index.n_chunks, self.index.index_bytes
                )
            else:
                start_s = batch_start_s
            truth_i = None
            if true_neighbor_ids is not None and true_neighbor_ids[i] is not None:
                truth_i = frozenset(int(x) for x in true_neighbor_ids[i])
            states.append(
                _QueryState(
                    position=i,
                    query=queries[i],
                    k=k,
                    order=orders[i] if router is None else None,
                    suffix_min=suffix_mins[i] if router is None else None,
                    start_s=start_s,
                    stop_rule=stop_rule,
                    truth=truth_i,
                    simulator=simulator,
                    fault_key=(
                        int(query_indices[i]) if query_indices is not None else None
                    ),
                    ranked_lb=ranked_lbs[i] if router is None else None,
                    stream=(
                        router.stream(queries[i], self.rank_by)
                        if router is not None
                        else None
                    ),
                )
            )

        chunk_cache: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        if shared_cache:
            # Shared simulated page cache: charge I/O in the sequential
            # loop's exact touch order (query-major).
            failed_chunks: set = set()
            for state in states:
                self._run_query_major(state, chunk_cache, faults, failed_chunks)
        else:
            n_workers = resolve_workers(workers, len(states))
            if n_workers <= 1:
                self._run_chunk_major(states, chunk_cache, faults)
            else:
                # Shard the batch; each shard keeps its own content cache so
                # threads never contend on a dict (chunks hot in several
                # shards are read once per shard, still far below once per
                # query).
                run_parallel(
                    lambda group: self._run_chunk_major(group, {}, faults),
                    shard(states, n_workers),
                    workers=n_workers,
                )
        return BatchSearchResult(results=[s.to_result() for s in states])

    # -- execution internals -------------------------------------------------

    def _read_chunk(
        self, chunk_id: int, cache: Dict[int, Tuple[np.ndarray, np.ndarray]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Chunk contents via the per-batch cache: one store read and one
        float64 promotion per chunk per batch.  When the cost model
        carries a simulated chunk cache, a payload attached by an earlier
        batch is reused — the cross-query warm path the cache models —
        without touching the simulated state (charging happens in the
        timing calls, never here)."""
        cached = cache.get(chunk_id)
        if cached is None:
            sim_cache = self.cost_model.chunk_cache
            payload = (
                sim_cache.peek_payload(self._page_offsets[chunk_id])
                if sim_cache is not None
                else None
            )
            if payload is not None:
                cached = payload  # type: ignore[assignment]
            else:
                ids, vectors = self.index.read_chunk(chunk_id)
                cached = (
                    np.asarray(ids, dtype=np.int64),
                    np.ascontiguousarray(vectors, dtype=np.float64),
                )
            cache[chunk_id] = cached
        return cached

    def _try_read_chunk(
        self,
        chunk_id: int,
        cache: Dict[int, Tuple[np.ndarray, np.ndarray]],
        failed: set,
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Degraded-mode chunk read: a *real* storage failure (e.g. a CRC
        mismatch) marks the chunk failed for the whole batch — one actual
        read attempt per chunk, shared by every query — and returns None
        so the caller folds it into the skip policy."""
        if chunk_id in failed:
            return None
        try:
            return self._read_chunk(chunk_id, cache)
        except CorruptFileError:
            failed.add(chunk_id)
            return None

    def _process_chunk_for_state(
        self,
        state: _QueryState,
        chunk_id: int,
        ids: np.ndarray,
        sq_distances: np.ndarray,
        min_sq: Optional[float] = None,
        outcome: Optional[ChunkFaultOutcome] = None,
    ) -> None:
        """Apply one chunk's scan results to one query: timing charge,
        neighbor update, trace event, completion proof, stop rule —
        mirroring the sequential loop body statement for statement.

        ``sq_distances`` is the chunk's *squared*-distance row; the square
        root is taken here, and only for chunks that pass the admission
        gate — ``sqrt`` is monotone and correctly rounded (IEEE 754), so
        ``sqrt(min(sq))`` is bit-equal to ``min(sqrt(sq))`` and deferring
        it changes no observable float.  ``min_sq`` is the row minimum
        when the caller computed it batched (``None`` computes it here).
        ``outcome`` is the (successful) fault outcome of this access
        under degraded execution — its ``extra_io_s`` lands on the
        chunk's I/O charge, its kind/retries on the trace event.
        """
        extra_io_s = outcome.extra_io_s if outcome is not None else 0.0
        if state.simulator is not None:
            elapsed = state.simulator.process_chunk(
                self._page_list[chunk_id],
                self._count_list[chunk_id],
                page_offset=self._page_offsets[chunk_id],
                extra_io_s=extra_io_s,
            )
        else:
            # PipelineSimulator.process_chunk inlined on three floats —
            # same operations in the same order, so timestamps are
            # bit-identical (R[i] = max(R[i-1], C[i-2]) + io;
            # C[i] = max(R[i], C[i-1]) + cpu; serial without overlap).
            io = self._io_cost[chunk_id]
            if extra_io_s:
                io += extra_io_s
            cpu = self._cpu_cost[chunk_id]
            prev_proc = state.prev_proc
            if self._overlap:
                read_done = max(state.prev_read, state.drained) + io
                elapsed = max(read_done, prev_proc) + cpu
                state.prev_read = read_done
            else:
                elapsed = prev_proc + io + cpu
            state.drained = prev_proc
            state.prev_proc = elapsed
        neighbors = state.neighbors
        n_found = state.n_found
        kth = state.kth
        if min_sq is None:
            min_sq = float(sq_distances.min()) if sq_distances.size else math.inf
        # A chunk whose best candidate cannot beat the current k-th
        # neighbor admits nothing; skip the heap walk (and the row's
        # square root) entirely.  math.sqrt and np.sqrt are both IEEE
        # correctly-rounded, so the scalar gate compares the same float
        # the old sqrt-the-whole-row code produced.
        min_d = math.sqrt(min_sq)
        if n_found < state.k or min_d <= kth:
            if neighbors.update(np.sqrt(sq_distances), ids):
                n_found = len(neighbors)
                kth = neighbors.kth_distance
                state.n_found = n_found
                state.kth = kth
                if state.truth is not None:
                    state.matches = neighbors.true_match_count(state.truth)
        next_rank = state.rank0 + 1
        if outcome is None:
            state.events.append(
                TraceEvent(
                    chunk_id=chunk_id,
                    rank=next_rank,
                    elapsed_s=elapsed,
                    n_descriptors=self._count_list[chunk_id],
                    neighbors_found=n_found,
                    kth_distance=kth,
                    true_matches=state.matches,
                )
            )
        else:
            state.events.append(
                TraceEvent(
                    chunk_id=chunk_id,
                    rank=next_rank,
                    elapsed_s=elapsed,
                    n_descriptors=self._count_list[chunk_id],
                    neighbors_found=n_found,
                    kth_distance=kth,
                    true_matches=state.matches,
                    fault=outcome.kind,
                    retries=outcome.retries,
                )
            )
        self._advance_state(state, elapsed, next_rank)

    def _advance_state(
        self, state: _QueryState, elapsed: float, next_rank: int
    ) -> None:
        """The post-event tail shared by the scan, prune and skip
        handlers: completion proof, stop rule, rank advance, exhaustion —
        mirroring the sequential loop's epilogue statement for statement."""
        n_found = state.n_found
        kth = state.kth
        stream = state.stream
        if stream is None:
            remaining_lb = (
                state.suffix_list[next_rank]
                if next_rank < state.n_ranks
                else math.inf
            )
            at_end = next_rank >= state.n_ranks
        else:
            remaining_lb = stream.exact_remaining_lb()
            at_end = stream.exhausted
        if n_found >= state.k and remaining_lb > kth:
            # The completion proof (SearchProgress.completion_proven) —
            # it cannot claim exactness over a degraded scan.
            if state.degraded:
                state.finish("proof-degraded", False)
            else:
                state.finish("completed", True)
            return
        rule = state.stop_rule
        # ExactCompletion never stops early; skip building the progress
        # snapshot on the default path (a measurable per-event saving).
        if type(rule) is not ExactCompletion:
            reason = rule.check(
                SearchProgress(
                    chunks_read=next_rank,
                    elapsed_s=elapsed,
                    neighbors_found=n_found,
                    kth_distance=kth,
                    remaining_lower_bound=remaining_lb,
                )
            )
            if reason is not None:
                state.finish(reason, False)
                return
        state.rank0 = next_rank
        if at_end:
            # Every chunk read without the proof firing early: the result
            # is nevertheless exact (there is nothing left to read) —
            # unless skipped chunks left holes in the scan.
            state.finish("exhausted", not state.degraded)

    # repro: exact
    def _prune_chunk_for_state(
        self,
        state: _QueryState,
        chunk_id: int,
        outcome: Optional[ChunkFaultOutcome] = None,
    ) -> None:
        """Apply one *pruned* chunk to one query: charged and logged
        exactly like :meth:`_process_chunk_for_state` — same simulated
        timing recurrence, same trace event — but the chunk provably
        admits no candidate (its lower bound strictly exceeds the k-th
        distance), so the store read, distance kernel and heap update are
        skipped on the host."""
        extra_io_s = outcome.extra_io_s if outcome is not None else 0.0
        if state.simulator is not None:
            elapsed = state.simulator.process_chunk(
                self._page_list[chunk_id],
                self._count_list[chunk_id],
                page_offset=self._page_offsets[chunk_id],
                extra_io_s=extra_io_s,
            )
        else:
            io = self._io_cost[chunk_id]
            if extra_io_s:
                io += extra_io_s
            cpu = self._cpu_cost[chunk_id]
            prev_proc = state.prev_proc
            if self._overlap:
                read_done = max(state.prev_read, state.drained) + io
                elapsed = max(read_done, prev_proc) + cpu
                state.prev_read = read_done
            else:
                elapsed = prev_proc + io + cpu
            state.drained = prev_proc
            state.prev_proc = elapsed
        state.pruned += 1
        next_rank = state.rank0 + 1
        # The event is bit-identical to the scanned chunk's: a pruned
        # chunk updates nothing, so n_found / kth / matches are unchanged.
        if outcome is None:
            state.events.append(
                TraceEvent(
                    chunk_id=chunk_id,
                    rank=next_rank,
                    elapsed_s=elapsed,
                    n_descriptors=self._count_list[chunk_id],
                    neighbors_found=state.n_found,
                    kth_distance=state.kth,
                    true_matches=state.matches,
                )
            )
        else:
            state.events.append(
                TraceEvent(
                    chunk_id=chunk_id,
                    rank=next_rank,
                    elapsed_s=elapsed,
                    n_descriptors=self._count_list[chunk_id],
                    neighbors_found=state.n_found,
                    kth_distance=state.kth,
                    true_matches=state.matches,
                    fault=outcome.kind,
                    retries=outcome.retries,
                )
            )
        self._advance_state(state, elapsed, next_rank)

    # repro: exact
    def _prune_run_for_state(self, state: _QueryState) -> None:
        """Consume the state's whole run of *consecutive* prunable chunks
        in one tight loop — the fast path behind the pruned scan's
        wall-clock win.

        Only taken when nothing can interrupt the run: flat ranking (no
        router stream), no fault injection, the inlined timing recurrence
        (no stateful simulator), and the run-to-completion stop rule.
        Under those conditions the k-th distance is frozen for the whole
        run (pruned chunks admit nothing), so the loop needs no per-event
        checks at all:

        * The neighbor set is full (a finite k-th distance is what let
          the caller prune), so nothing downstream of the heap changes.
        * The completion proof cannot fire mid-run.  The state entered
          with ``suffix_min[rank0] <= kth`` (otherwise the previous
          event's proof would have finished it), so a chunk with
          ``lb <= kth`` lies ahead; the suffix minimum is non-decreasing
          in rank, so it stays ``<= kth`` at every rank up to and
          including that chunk — which is also where the loop condition
          stops.  The same chunk bounds the run away from the end of the
          ranking, so exhaustion is unreachable too.

        Each event carries exactly the values
        :meth:`_prune_chunk_for_state` would produce (same recurrence,
        same fields, ranks contiguous by construction), so traces and
        timestamps are bit-identical to the per-event path; events are
        built with the C-level tuple constructor from a value tuple whose
        run-constant tail (``n_found``/``kth``/``matches`` cannot move
        while every chunk is pruned) is hoisted out of the loop.
        """
        order = state.order
        lbs = state.lb_list
        per_chunk = self._prune_cost
        events = state.events
        append = events.append
        kth = state.kth
        # (neighbors_found, kth_distance, true_matches, skipped, fault,
        # retries) — constant for the whole run.
        tail = (state.n_found, kth, state.matches, False, "none", 0)
        prev_read = state.prev_read
        prev_proc = state.prev_proc
        drained = state.drained
        r = state.rank0
        start = r
        make = _EVENT_MAKE
        if self._overlap:
            while lbs[r] > kth:
                cid = order[r]
                io, cpu, count = per_chunk[cid]
                read_done = (prev_read if prev_read >= drained else drained) + io
                elapsed = (read_done if read_done >= prev_proc else prev_proc) + cpu
                prev_read = read_done
                drained = prev_proc
                prev_proc = elapsed
                r += 1
                append(make((cid, r, elapsed, count) + tail))
        else:
            while lbs[r] > kth:
                cid = order[r]
                io, cpu, count = per_chunk[cid]
                elapsed = prev_proc + io + cpu
                drained = prev_proc
                prev_proc = elapsed
                r += 1
                append(make((cid, r, elapsed, count) + tail))
        state.prev_read = prev_read
        state.prev_proc = prev_proc
        state.drained = drained
        state.pruned += r - start
        state.rank0 = r

    def _skip_chunk_for_state(
        self,
        state: _QueryState,
        chunk_id: int,
        outcome: ChunkFaultOutcome,
    ) -> None:
        """Apply a skipped chunk to one query: the failed attempts occupy
        the disk (``outcome.extra_io_s``) but no CPU work happens and the
        neighbor set is untouched — mirroring the sequential searcher's
        degraded branch (``PipelineSimulator.skip_chunk``) statement for
        statement."""
        io = outcome.extra_io_s
        if state.simulator is not None:
            elapsed = state.simulator.skip_chunk(io)
        else:
            prev_proc = state.prev_proc
            if self._overlap:
                read_done = max(state.prev_read, state.drained) + io
                elapsed = max(read_done, prev_proc)
                state.prev_read = read_done
            else:
                elapsed = prev_proc + io
            state.drained = prev_proc
            state.prev_proc = elapsed
        state.degraded = True
        n_found = state.n_found
        kth = state.kth
        next_rank = state.rank0 + 1
        state.events.append(
            TraceEvent(
                chunk_id=chunk_id,
                rank=next_rank,
                elapsed_s=elapsed,
                n_descriptors=self._count_list[chunk_id],
                neighbors_found=n_found,
                kth_distance=kth,
                true_matches=state.matches,
                skipped=True,
                fault=outcome.kind,
                retries=outcome.retries,
            )
        )
        # state.degraded is set, so the shared tail resolves the proof to
        # "proof-degraded" and exhaustion to completed=False.
        self._advance_state(state, elapsed, next_rank)

    def _run_chunk_major(
        self,
        states: List[_QueryState],
        chunk_cache: Dict[int, Tuple[np.ndarray, np.ndarray]],
        faults: Optional[FaultInjector] = None,
    ) -> None:
        """Coalesced execution: chunk scans are shared across the whole
        cohort through a per-batch scan cache.

        Each state runs to its stop in turn; the first time any query
        demands a chunk, that chunk's distances are computed for the
        *whole* cohort in a single kernel call against a query matrix
        stacked once per batch, and the rows cached — each chunk costs
        one store read, one float64 promotion, and one fixed-shape kernel
        call per batch, however the per-query rank orders interleave.  A
        query's row is its index in ``states``, so dispensing a cached
        row is two list reads; rows computed for already-finished (or
        later-pruning) queries are never consumed and cost only BLAS
        throughput, far below the per-chunk bookkeeping they used to
        save.

        Degraded execution (``faults``) preserves the sharing: fault
        decisions are keyed by ``(query position, chunk)``, never by call
        order, so injecting them into this chunk-major interleave yields
        exactly the sequential searcher's per-query outcomes; a chunk
        whose *real* read fails is marked failed once for the cohort.

        Pruning composes with the sharing: a state arriving at a prunable
        chunk never demands its distance row, so a chunk every remaining
        state prunes is neither read nor scanned."""
        scanned: Dict[int, tuple] = {}
        failed_chunks: set = set()
        prune = self._prune
        query_matrix = np.stack([s.query for s in states])
        n_rows = len(states)
        for row, state in enumerate(states):
            process = self._process_chunk_for_state
            fault_key = state.fault_key
            burst = (
                prune
                and faults is None
                and state.stream is None
                and state.simulator is None
                and type(state.stop_rule) is ExactCompletion
            )
            while not state.done:
                chunk_id, lb = state.pull_next()
                outcome = None
                if faults is not None:
                    readable = (
                        self._try_read_chunk(chunk_id, chunk_cache, failed_chunks)
                        is not None
                    )
                    outcome = faults.outcome(
                        fault_key,
                        chunk_id,
                        self._page_list[chunk_id],
                        readable=readable,
                    )
                    if not outcome.ok:
                        self._skip_chunk_for_state(state, chunk_id, outcome)
                        continue
                if prune and lb > state.kth:
                    if burst:
                        self._prune_run_for_state(state)
                    else:
                        self._prune_chunk_for_state(state, chunk_id, outcome)
                    continue
                entry = scanned.get(chunk_id)
                if entry is None:
                    ids, vectors = self._read_chunk(chunk_id, chunk_cache)
                    # Kept in squared space: _process_chunk_for_state takes
                    # the root only for rows that pass its admission gate.
                    d2 = pairwise_squared_distances(query_matrix, vectors)
                    # Row minima batched too: the per-query skip test then
                    # costs a list index instead of a numpy reduction.
                    mins2 = (
                        d2.min(axis=1).tolist()
                        if d2.shape[1]
                        else [math.inf] * n_rows
                    )
                    entry = (ids, d2, mins2)
                    scanned[chunk_id] = entry
                ids, d2, mins2 = entry
                process(state, chunk_id, ids, d2[row], mins2[row], outcome)

    def _run_query_major(
        self,
        state: _QueryState,
        chunk_cache: Dict[int, Tuple[np.ndarray, np.ndarray]],
        faults: Optional[FaultInjector] = None,
        failed_chunks: Optional[set] = None,
    ) -> None:
        """Sequential-order execution for shared-cache cost models: one
        query runs to its stop before the next one starts, so simulated
        cache touches land in exactly the per-query loop's order.

        With a simulated chunk cache the handlers charge each access
        through it (via the per-state simulator); the canonical promoted
        payload is attached *after* the timing call, exactly as the
        sequential searcher does, so later queries — in this batch or the
        next — reuse the decoded contents while the chunk stays resident."""
        sim_cache = self.cost_model.chunk_cache
        prune = self._prune
        while not state.done:
            chunk_id, lb = state.pull_next()
            prunable = prune and lb > state.kth
            outcome = None
            contents = None
            if faults is not None:
                # Degraded execution needs the chunk's readability even
                # when pruning would skip the scan: the fault outcome
                # (and therefore the timing and trace) depends on it.
                contents = self._try_read_chunk(
                    chunk_id,
                    chunk_cache,
                    failed_chunks if failed_chunks is not None else set(),
                )
                outcome = faults.outcome(
                    state.fault_key,
                    chunk_id,
                    self._page_list[chunk_id],
                    readable=contents is not None,
                )
                if not outcome.ok:
                    self._skip_chunk_for_state(state, chunk_id, outcome)
                    continue
            elif not prunable:
                contents = self._read_chunk(chunk_id, chunk_cache)
            if prunable:
                self._prune_chunk_for_state(state, chunk_id, outcome)
            else:
                assert contents is not None
                ids, vectors = contents
                sq = pairwise_squared_distances(
                    state.query[np.newaxis, :], vectors
                )
                self._process_chunk_for_state(
                    state, chunk_id, ids, sq[0], outcome=outcome
                )
            if sim_cache is not None and contents is not None:
                # Attach only sticks while the chunk is simulated-resident
                # (the process call above just touched it).
                sim_cache.attach(self._page_offsets[chunk_id], contents)
