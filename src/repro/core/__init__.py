"""Core of the reproduction: the chunked approximate-search engine.

This package implements the paper's primary machinery:

* the descriptor data model (:mod:`~repro.core.dataset`),
* exact distance kernels (:mod:`~repro.core.distance`),
* the bounded neighbor set (:mod:`~repro.core.neighbors`),
* chunks and their centroid/radius summaries (:mod:`~repro.core.chunk`),
* the two-file chunk index (:mod:`~repro.core.chunk_index`),
* the ranked-scan search with stop rules and exact-completion proof
  (:mod:`~repro.core.search`, :mod:`~repro.core.stop_rules`),
* sequential-scan ground truth (:mod:`~repro.core.ground_truth`), and
* the paper's quality/time metrics (:mod:`~repro.core.metrics`,
  :mod:`~repro.core.trace`).
"""

from .approx_rules import (
    DistanceDistribution,
    EpsilonApproximation,
    PacApproximation,
    estimate_epsilon,
)
from .batch_search import BatchChunkSearcher, BatchSearchResult
from .chunk import Chunk, ChunkMeta, ChunkSet
from .chunk_index import ChunkIndex, build_chunk_index
from .dataset import DEFAULT_DIMENSIONS, DescriptorCollection
from .ground_truth import GroundTruthStore, exact_knn, exact_knn_batch
from .ingest import (
    CheckpointReport,
    RecoveryReport,
    StreamingChunkIndex,
    verify_streaming_index,
)
from .maintenance import ChunkIndexMaintainer, ChunkSnapshot, MaintenanceStats
from .metrics import (
    CompletionStats,
    QualityCurves,
    completion_stats,
    curves_from_traces,
    precision_at_k,
)
from .neighbors import Neighbor, NeighborSet
from .search import (
    RANK_BY_CENTROID,
    RANK_BY_LOWER_BOUND,
    ChunkSearcher,
    SearchResult,
)
from .stop_rules import (
    ExactCompletion,
    FirstOf,
    MaxChunks,
    SearchProgress,
    StopRule,
    TimeBudget,
)
from .trace import SearchTrace, TraceEvent

__all__ = [
    "BatchChunkSearcher",
    "BatchSearchResult",
    "DistanceDistribution",
    "EpsilonApproximation",
    "PacApproximation",
    "estimate_epsilon",
    "ChunkIndexMaintainer",
    "ChunkSnapshot",
    "MaintenanceStats",
    "StreamingChunkIndex",
    "RecoveryReport",
    "CheckpointReport",
    "verify_streaming_index",
    "Chunk",
    "ChunkMeta",
    "ChunkSet",
    "ChunkIndex",
    "build_chunk_index",
    "DEFAULT_DIMENSIONS",
    "DescriptorCollection",
    "GroundTruthStore",
    "exact_knn",
    "exact_knn_batch",
    "CompletionStats",
    "QualityCurves",
    "completion_stats",
    "curves_from_traces",
    "precision_at_k",
    "Neighbor",
    "NeighborSet",
    "RANK_BY_CENTROID",
    "RANK_BY_LOWER_BOUND",
    "ChunkSearcher",
    "SearchResult",
    "ExactCompletion",
    "FirstOf",
    "MaxChunks",
    "SearchProgress",
    "StopRule",
    "TimeBudget",
    "SearchTrace",
    "TraceEvent",
]
