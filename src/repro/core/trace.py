"""Per-chunk search traces.

The paper logs its quality and time metrics "after the processing of every
chunk" (section 5.4), always running queries to conclusion so that the
quality of intermediate results can be measured afterwards.  A
:class:`SearchTrace` is that log for one query: one :class:`TraceEvent` per
processed chunk, plus the fixed query-start cost (index read + ranking).
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, NamedTuple

import numpy as np

__all__ = ["TraceEvent", "SearchTrace"]


class TraceEvent(NamedTuple):
    """State right after one chunk finished processing.

    A ``NamedTuple`` rather than a frozen dataclass on purpose: a trace
    event is recorded for *every* visited chunk of every query, so its
    construction sits on the hottest per-event path of both engines, and
    the C-level tuple constructor is several times cheaper than the
    guarded field-by-field ``__init__`` a frozen dataclass generates.
    The consuming API is unchanged: immutable, field access by name,
    value equality, and keyword construction all behave identically.

    Attributes
    ----------
    chunk_id:
        Which chunk (index-file position) was processed.
    rank:
        Its position in the query's chunk ranking (1-based).
    elapsed_s:
        Clock reading when the chunk's results became visible.
    n_descriptors:
        Descriptors scanned in this chunk.
    neighbors_found:
        Size of the neighbor set after the update.
    kth_distance:
        Current distance to the k-th neighbor (inf while warming up).
    true_matches:
        How many of the query's *true* k nearest neighbors are present in
        the current neighbor set — the paper's intermediate-quality
        measure.  ``-1`` when no ground truth was supplied.
    skipped:
        True when the chunk was *abandoned* under degraded execution:
        its read attempts all failed, time was charged, but none of its
        ``n_descriptors`` descriptors were scanned.
    fault:
        Fault kind that touched this chunk access (``"none"`` for clean
        reads; see :mod:`repro.faults.plan` for the taxonomy).
    retries:
        Read attempts beyond the first (0 for clean reads).
    """

    chunk_id: int
    rank: int
    elapsed_s: float
    n_descriptors: int
    neighbors_found: int
    kth_distance: float
    true_matches: int = -1
    skipped: bool = False
    fault: str = "none"
    retries: int = 0


@dataclasses.dataclass
class SearchTrace:
    """Complete per-chunk log of one query's execution."""

    start_elapsed_s: float
    events: List[TraceEvent] = dataclasses.field(default_factory=list)

    def append(self, event: TraceEvent) -> None:
        if self.events and event.rank != self.events[-1].rank + 1:
            raise ValueError("trace events must arrive in rank order")
        if not self.events and event.rank != 1:
            raise ValueError("first trace event must have rank 1")
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    # -- quality-over-cost curves (feed figures 2-5) -----------------------

    def chunks_to_find(self, n_neighbors: int) -> float:
        """Chunks read until ``n_neighbors`` true neighbors were present.

        Returns 0 for ``n_neighbors == 0`` and ``inf`` if the trace never
        reached that many matches (cannot happen on completion runs).
        Requires ground truth to have been supplied to the search.
        """
        if n_neighbors <= 0:
            return 0.0
        for event in self.events:
            if event.true_matches < 0:
                raise ValueError("trace has no ground-truth match counts")
            if event.true_matches >= n_neighbors:
                return float(event.rank)
        return math.inf

    def time_to_find(self, n_neighbors: int) -> float:
        """Elapsed seconds until ``n_neighbors`` true neighbors were present.

        For ``n_neighbors == 0`` this is the query-start cost (the index
        read), which is why figures 4-5 do not start at the origin.
        """
        if n_neighbors <= 0:
            return self.start_elapsed_s
        for event in self.events:
            if event.true_matches < 0:
                raise ValueError("trace has no ground-truth match counts")
            if event.true_matches >= n_neighbors:
                return event.elapsed_s
        return math.inf

    def matches_curve(self) -> np.ndarray:
        """``true_matches`` after each chunk, as an int64 array."""
        return np.asarray([e.true_matches for e in self.events], dtype=np.int64)

    def elapsed_curve(self) -> np.ndarray:
        """Completion timestamp of each chunk, dtype float64."""
        return np.asarray([e.elapsed_s for e in self.events], dtype=np.float64)

    @property
    def final_elapsed_s(self) -> float:
        """Clock reading when the query finished."""
        return self.events[-1].elapsed_s if self.events else self.start_elapsed_s

    @property
    def chunks_read(self) -> int:
        """Chunks whose descriptors were actually scanned (skips excluded)."""
        return sum(1 for e in self.events if not e.skipped)

    @property
    def chunks_skipped(self) -> int:
        """Chunks abandoned after exhausting read retries."""
        return sum(1 for e in self.events if e.skipped)

    @property
    def descriptors_scanned(self) -> int:
        return int(sum(e.n_descriptors for e in self.events if not e.skipped))

    @property
    def descriptors_skipped(self) -> int:
        """Descriptors lost to skipped chunks (never scanned)."""
        return int(sum(e.n_descriptors for e in self.events if e.skipped))

    @property
    def coverage_fraction(self) -> float:
        """Fraction of *visited* descriptors actually scanned.

        1.0 for a clean run; below 1.0 the search result can silently
        miss true neighbors that lived in the skipped chunks, which is
        why a degraded search never claims exact completion.
        """
        scanned = self.descriptors_scanned
        total = scanned + self.descriptors_skipped
        return scanned / total if total else 1.0

    @property
    def total_retries(self) -> int:
        """Read attempts beyond the first, summed over all chunk accesses."""
        return int(sum(e.retries for e in self.events))
