"""Stop rules for the approximate chunk search.

Section 4.3: "The search might simply stop once n chunks have been
processed or when a time threshold has been passed.  If the search is asked
to go to completion, however, it stops when k neighbors have been found and
when the minimum distance to the next chunk is greater than the current
distance to the k-th neighbor."

Each rule inspects a :class:`SearchProgress` snapshot after a chunk has
been processed and returns a reason string when the search should stop, or
``None`` to continue.  The completion proof is not a rule here — it is a
correctness guarantee applied by the searcher itself — but
:class:`ExactCompletion` exists as an explicit "no early stop" marker.

The paper's "second lesson" (section 5.7) — elapsed time is a more natural
stop rule than a chunk count, because variably sized chunks make the chunk
count a poor proxy for time — is exercised by the stop-rule ablation
benchmark.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional, Sequence

__all__ = [
    "SearchProgress",
    "StopRule",
    "ExactCompletion",
    "MaxChunks",
    "TimeBudget",
    "DeadlineBudget",
    "FirstOf",
]


@dataclasses.dataclass(frozen=True)
class SearchProgress:
    """Snapshot handed to stop rules after each processed chunk.

    Attributes
    ----------
    chunks_read:
        Chunks processed so far (>= 1 when rules are consulted).
    elapsed_s:
        Clock reading after the last chunk completed (simulated or wall).
    neighbors_found:
        Current size of the neighbor set (== k once warm).
    kth_distance:
        Distance to the current k-th neighbor (inf while not full).
    remaining_lower_bound:
        Smallest possible distance from the query to any descriptor in any
        *unread* chunk (min over remaining chunks of
        ``d(query, centroid) - radius``); inf when no chunks remain.
    """

    chunks_read: int
    elapsed_s: float
    neighbors_found: int
    kth_distance: float
    remaining_lower_bound: float

    @property
    def completion_proven(self) -> bool:
        """True when no unread chunk can improve the k-th neighbor."""
        return self.remaining_lower_bound > self.kth_distance


class StopRule:
    """Base class; subclasses override :meth:`check`."""

    def check(self, progress: SearchProgress) -> Optional[str]:
        """Return a stop reason, or ``None`` to keep scanning."""
        raise NotImplementedError

    def __and__(self, other: "StopRule") -> "FirstOf":
        return FirstOf([self, other])


class ExactCompletion(StopRule):
    """Never stop early; run until the completion proof fires.

    The searcher always applies the completion proof, so this rule simply
    declines to stop.  It exists so that "run to completion" is an explicit
    choice at call sites.
    """

    # repro: exact
    def check(self, progress: SearchProgress) -> Optional[str]:
        return None

    def __repr__(self) -> str:
        return "ExactCompletion()"


class MaxChunks(StopRule):
    """Stop after a fixed number of chunks (the "simple and natural stop
    rule" of section 1: process only the n nearest chunks)."""

    def __init__(self, n_chunks: int):
        if n_chunks <= 0:
            raise ValueError(f"n_chunks must be positive, got {n_chunks}")
        self.n_chunks = int(n_chunks)

    # repro: approximate
    def check(self, progress: SearchProgress) -> Optional[str]:
        if progress.chunks_read >= self.n_chunks:
            return f"max-chunks({self.n_chunks})"
        return None

    def __repr__(self) -> str:
        return f"MaxChunks({self.n_chunks})"


class TimeBudget(StopRule):
    """Stop once the clock passes a budget (seconds).

    Because a chunk is the granule of the search, the rule fires *after*
    the chunk whose completion crossed the budget — the same semantics as
    the paper's "when a time threshold has been passed".
    """

    def __init__(self, budget_s: float):
        if budget_s <= 0 or math.isnan(budget_s):
            raise ValueError(f"budget must be positive, got {budget_s}")
        self.budget_s = float(budget_s)

    # repro: approximate
    def check(self, progress: SearchProgress) -> Optional[str]:
        if progress.elapsed_s >= self.budget_s:
            return f"time-budget({self.budget_s:g}s)"
        return None

    def __repr__(self) -> str:
        return f"TimeBudget({self.budget_s!r})"


class DeadlineBudget(StopRule):
    """Stop once the clock passes the *remaining* budget of a deadline.

    The remaining-budget variant of :class:`TimeBudget`: a request that
    arrived carrying an absolute deadline has, by the time its search
    starts, only ``remaining_s`` seconds left, and the search must stop
    as soon as the per-query clock crosses that remainder.  The rule is
    mechanically identical to :class:`TimeBudget` but reports a distinct
    ``deadline(...)`` stop reason, so a result trimmed to meet an SLO is
    distinguishable from one trimmed by a configured time budget.

    Like every stop rule it fires *after* the chunk whose completion
    crossed the budget — a chunk is the granule of the search — so at
    least one chunk is always scanned and the returned top-k is valid
    (possibly degraded), never empty.

    Composes with other rules via :class:`FirstOf`, e.g.
    ``FirstOf([DeadlineBudget(remaining), MaxChunks(budget)])`` is the
    per-request rule the query service installs.
    """

    def __init__(self, remaining_s: float):
        if remaining_s <= 0 or math.isnan(remaining_s):
            raise ValueError(
                f"remaining deadline budget must be positive, got {remaining_s}"
            )
        self.remaining_s = float(remaining_s)

    # repro: approximate
    def check(self, progress: SearchProgress) -> Optional[str]:
        if progress.elapsed_s >= self.remaining_s:
            return f"deadline({self.remaining_s:g}s)"
        return None

    def __repr__(self) -> str:
        return f"DeadlineBudget({self.remaining_s!r})"


class FirstOf(StopRule):
    """Composite: stop as soon as any member rule fires."""

    def __init__(self, rules: Sequence[StopRule]):
        flattened = []
        for rule in rules:
            if isinstance(rule, FirstOf):
                flattened.extend(rule.rules)
            else:
                flattened.append(rule)
        if not flattened:
            raise ValueError("FirstOf needs at least one rule")
        self.rules = list(flattened)

    def check(self, progress: SearchProgress) -> Optional[str]:
        for rule in self.rules:
            reason = rule.check(progress)
            if reason is not None:
                return reason
        return None

    def __repr__(self) -> str:
        return f"FirstOf({self.rules!r})"
