"""Descriptor collection data model.

The paper's collection is 5,017,298 local descriptors computed over 52,273
images.  Each descriptor is a 24-dimensional float vector plus an integer
identifier, stored as a 100-byte record (24 x 4-byte floats + 4-byte id),
and the whole collection lives sequentially in a single file (paper
section 4.1).

:class:`DescriptorCollection` is the in-memory form used throughout the
library: a ``(n, d)`` float32 matrix plus parallel id arrays.  The on-disk
100-byte record layout is implemented in :mod:`repro.storage.records`.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Optional, Sequence

import numpy as np

__all__ = ["DescriptorCollection", "DEFAULT_DIMENSIONS", "DESCRIPTOR_RECORD_BYTES"]

#: Dimensionality of the paper's local descriptors.
DEFAULT_DIMENSIONS = 24

#: On-disk bytes per descriptor record: 24 float32 components + int32 id.
DESCRIPTOR_RECORD_BYTES = DEFAULT_DIMENSIONS * 4 + 4


@dataclasses.dataclass
class DescriptorCollection:
    """A set of local image descriptors.

    Attributes
    ----------
    vectors:
        ``(n, d)`` float32 matrix of descriptor components.
    ids:
        ``(n,)`` int64 array of globally unique descriptor identifiers.
        Ground truth, precision measurement and the on-disk chunk format all
        refer to descriptors by these ids, never by row position.
    image_ids:
        ``(n,)`` int64 array mapping each descriptor to its source image.
        Local description schemes yield a few hundred descriptors per image
        (paper section 4.1); image-level search (the paper's future work,
        implemented in :mod:`repro.extensions.multi_descriptor`) votes over
        this mapping.
    """

    vectors: np.ndarray
    ids: np.ndarray
    image_ids: np.ndarray

    def __post_init__(self) -> None:
        self.vectors = np.ascontiguousarray(self.vectors, dtype=np.float32)
        self.ids = np.ascontiguousarray(self.ids, dtype=np.int64)
        self.image_ids = np.ascontiguousarray(self.image_ids, dtype=np.int64)
        if self.vectors.ndim != 2:
            raise ValueError(f"vectors must be 2-D, got shape {self.vectors.shape}")
        n = self.vectors.shape[0]
        if self.ids.shape != (n,):
            raise ValueError(
                f"ids shape {self.ids.shape} does not match {n} vectors"
            )
        if self.image_ids.shape != (n,):
            raise ValueError(
                f"image_ids shape {self.image_ids.shape} does not match {n} vectors"
            )

    # -- construction -----------------------------------------------------

    @classmethod
    def from_vectors(
        cls,
        vectors: np.ndarray,
        ids: Optional[np.ndarray] = None,
        image_ids: Optional[np.ndarray] = None,
    ) -> "DescriptorCollection":
        """Build a collection, defaulting ids to row numbers.

        When ``image_ids`` is omitted every descriptor is assigned to a
        distinct synthetic image; tests and small examples use this.
        """
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.ndim == 1:
            vectors = vectors[np.newaxis, :]
        n = vectors.shape[0]
        if ids is None:
            ids = np.arange(n, dtype=np.int64)
        if image_ids is None:
            image_ids = np.asarray(ids, dtype=np.int64).copy()
        return cls(vectors=vectors, ids=ids, image_ids=image_ids)

    @classmethod
    def empty(cls, dimensions: int = DEFAULT_DIMENSIONS) -> "DescriptorCollection":
        """An empty collection of the given dimensionality."""
        return cls(
            vectors=np.empty((0, dimensions), dtype=np.float32),
            ids=np.empty(0, dtype=np.int64),
            image_ids=np.empty(0, dtype=np.int64),
        )

    # -- basic protocol ---------------------------------------------------

    def __len__(self) -> int:
        return self.vectors.shape[0]

    @property
    def dimensions(self) -> int:
        """Dimensionality ``d`` of the descriptor space."""
        return self.vectors.shape[1]

    @property
    def storage_bytes(self) -> int:
        """Bytes this collection occupies in the paper's 100-byte record layout."""
        return len(self) * (self.dimensions * 4 + 4)

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self.vectors)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DescriptorCollection):
            return NotImplemented
        return (
            np.array_equal(self.vectors, other.vectors)
            and np.array_equal(self.ids, other.ids)
            and np.array_equal(self.image_ids, other.image_ids)
        )

    # -- selection --------------------------------------------------------

    def take(self, row_indices: Sequence[int]) -> "DescriptorCollection":
        """New collection containing the given rows, in the given order."""
        idx = np.asarray(row_indices, dtype=np.intp)
        return DescriptorCollection(
            vectors=self.vectors[idx],
            ids=self.ids[idx],
            image_ids=self.image_ids[idx],
        )

    def mask(self, keep: np.ndarray) -> "DescriptorCollection":
        """New collection keeping rows where ``keep`` is True."""
        keep = np.asarray(keep, dtype=bool)
        if keep.shape != (len(self),):
            raise ValueError(
                f"mask shape {keep.shape} does not match collection of {len(self)}"
            )
        return DescriptorCollection(
            vectors=self.vectors[keep],
            ids=self.ids[keep],
            image_ids=self.image_ids[keep],
        )

    def rows_for_ids(self, wanted_ids: Sequence[int]) -> np.ndarray:
        """Row positions (dtype intp) of the given descriptor ids,
        order preserved.

        Raises ``KeyError`` if any id is absent.
        """
        lookup = {int(i): row for row, i in enumerate(self.ids)}
        try:
            return np.asarray([lookup[int(i)] for i in wanted_ids], dtype=np.intp)
        except KeyError as exc:
            raise KeyError(f"descriptor id {exc.args[0]} not in collection") from exc

    def concat(self, other: "DescriptorCollection") -> "DescriptorCollection":
        """Concatenate two collections (ids are not deduplicated)."""
        if other.dimensions != self.dimensions:
            raise ValueError(
                f"cannot concat {other.dimensions}-d onto {self.dimensions}-d"
            )
        return DescriptorCollection(
            vectors=np.vstack([self.vectors, other.vectors]),
            ids=np.concatenate([self.ids, other.ids]),
            image_ids=np.concatenate([self.image_ids, other.image_ids]),
        )

    # -- statistics -------------------------------------------------------

    def centroid(self) -> np.ndarray:
        """Mean vector of the collection (float64)."""
        if len(self) == 0:
            raise ValueError("centroid of an empty collection is undefined")
        return self.vectors.astype(np.float64).mean(axis=0)

    def norms(self) -> np.ndarray:
        """Euclidean norm (float64) of every descriptor (used by the
        norm-threshold outlier filter the paper mentions in section 5.2)."""
        return np.linalg.norm(self.vectors.astype(np.float64), axis=1)

    def dimension_ranges(self, trim_fraction: float = 0.0) -> np.ndarray:
        """Per-dimension ``(low, high)`` value ranges, optionally trimmed.

        With ``trim_fraction=0.05`` this is exactly the paper's SQ-workload
        preprocessing: "After discarding the top and bottom 5%, we stored
        the remaining value range of each dimension" (section 5.3).

        Returns an array of shape ``(d, 2)``, dtype float64.
        """
        if not 0.0 <= trim_fraction < 0.5:
            raise ValueError(f"trim_fraction must be in [0, 0.5), got {trim_fraction}")
        if len(self) == 0:
            raise ValueError("ranges of an empty collection are undefined")
        lo = np.quantile(self.vectors, trim_fraction, axis=0)
        hi = np.quantile(self.vectors, 1.0 - trim_fraction, axis=0)
        return np.stack([lo, hi], axis=1)
