"""Uniform-size chunks from SR-tree leaves (paper section 2).

"First, we added a parameter to control the size of the leaves, and second,
we added a method to generate chunks from the leaves, thus throwing away
the upper levels of the tree."

The chunker bulk-builds an SR-tree with the requested leaf capacity and
emits one chunk per leaf.  It never discards outliers ("this approach does
not handle outliers naturally"); the experiments run it on collections from
which BAG's outliers were already removed, mirroring the paper's protocol.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.chunk import Chunk, ChunkSet
from ..core.dataset import DescriptorCollection
from ..srtree.bulk_load import partition_rows_uniform
from .base import Chunker, ChunkingResult

__all__ = ["SRTreeChunker"]


class SRTreeChunker(Chunker):
    """One chunk per statically built SR-tree leaf.

    Parameters
    ----------
    leaf_capacity:
        Target descriptors per chunk; every chunk has exactly this many
        except the single remainder chunk.
    """

    name = "SR"

    def __init__(self, leaf_capacity: int):
        if leaf_capacity < 1:
            raise ValueError(f"leaf capacity must be positive, got {leaf_capacity}")
        self.leaf_capacity = int(leaf_capacity)

    def form_chunks(self, collection: DescriptorCollection) -> ChunkingResult:
        if len(collection) == 0:
            raise ValueError("cannot chunk an empty collection")
        # Build-time wall-clock measurement: feeds build_info only,
        # never the simulated query cost (hence the lint waiver).
        started = time.perf_counter()  # repro-lint: disable=CLK001
        groups = partition_rows_uniform(collection.vectors, self.leaf_capacity)
        chunks = [Chunk.from_rows(collection, rows) for rows in groups]
        elapsed = time.perf_counter() - started  # repro-lint: disable=CLK001
        return ChunkingResult(
            original=collection,
            retained=collection,
            chunk_set=ChunkSet(collection, chunks),
            outlier_rows=np.empty(0, dtype=np.intp),
            build_info={
                "build_seconds": elapsed,
                "leaf_capacity": float(self.leaf_capacity),
            },
        )
