"""CF (Cluster Forming) chunker — the Clindex algorithm.

Li, Chang, Garcia-Molina, Wiederhold: "Clustering for approximate
similarity search in high-dimensional spaces", TKDE 2002 — the paper that
originated the clustering-for-indexing paradigm this reproduction studies.
The paper's related-work section explains why CF was *not* used in its
comparison: CF's grid-based growth can produce clusters of completely
arbitrary shape, and its implementation had a hidden maximum-cluster-size
parameter that breaks natural clusters arbitrarily.  Implementing it makes
that critique testable.

Algorithm (following the TKDE description):

1. quantize every dimension into two halves at the median, mapping each
   descriptor to a cell of the resulting ``2^d`` grid (only occupied cells
   are materialized);
2. process occupied cells in decreasing population ("segments of the
   multidimensional space are processed in the order of how many data
   points are contained within that segment");
3. each unassigned cell seeds a cluster that greedily absorbs unassigned
   *adjacent* cells (cells whose signatures differ in exactly one
   dimension), most-populated first, until the hidden size cap is hit;
4. descriptors inherit their cell's cluster; cells never split, so a
   cluster's shape is an arbitrary union of adjacent hypercube cells.
"""

from __future__ import annotations

import heapq
import time
from typing import Dict, Iterator, List, Tuple

import numpy as np

from ..core.chunk import Chunk, ChunkSet
from ..core.dataset import DescriptorCollection
from .base import Chunker, ChunkingResult

__all__ = ["ClindexChunker"]


class ClindexChunker(Chunker):
    """Grid-based Cluster Forming.

    Parameters
    ----------
    max_chunk_size:
        The "hidden parameter": a growing cluster stops absorbing cells
        once its population reaches this.
    """

    name = "CF"

    def __init__(self, max_chunk_size: int):
        if max_chunk_size < 1:
            raise ValueError("max chunk size must be positive")
        self.max_chunk_size = int(max_chunk_size)

    def _cell_signatures(self, collection: DescriptorCollection) -> np.ndarray:
        """Per-descriptor cell signature: one bit per dimension (above or
        below the dimension median)."""
        vectors = collection.vectors.astype(np.float64)
        medians = np.median(vectors, axis=0)
        return (vectors >= medians).astype(np.uint8)

    def form_chunks(self, collection: DescriptorCollection) -> ChunkingResult:
        n = len(collection)
        if n == 0:
            raise ValueError("cannot chunk an empty collection")
        # Build-time wall-clock measurement: feeds build_info only,
        # never the simulated query cost (hence the lint waiver).
        started = time.perf_counter()  # repro-lint: disable=CLK001
        signatures = self._cell_signatures(collection)

        # Occupied cells and their member rows.
        cells: Dict[Tuple[int, ...], List[int]] = {}
        for row in range(n):
            cells.setdefault(tuple(signatures[row]), []).append(row)

        # Decreasing-population processing order.
        order = sorted(cells, key=lambda c: (-len(cells[c]), c))
        assigned: Dict[Tuple[int, ...], int] = {}
        clusters: List[List[int]] = []

        def neighbors(cell: Tuple[int, ...]) -> Iterator[Tuple[int, ...]]:
            for dim in range(len(cell)):
                flipped = list(cell)
                flipped[dim] ^= 1
                yield tuple(flipped)

        for seed_cell in order:
            if seed_cell in assigned:
                continue
            cluster_id = len(clusters)
            members: List[int] = []
            # Greedy growth: most-populated adjacent unassigned cell next.
            frontier = [(-len(cells[seed_cell]), seed_cell)]
            while frontier and len(members) < self.max_chunk_size:
                _, cell = heapq.heappop(frontier)
                if cell in assigned:
                    continue
                assigned[cell] = cluster_id
                members.extend(cells[cell])
                for adjacent in neighbors(cell):
                    if adjacent in cells and adjacent not in assigned:
                        heapq.heappush(
                            frontier, (-len(cells[adjacent]), adjacent)
                        )
            clusters.append(members)

        chunks = [
            Chunk.from_rows(collection, np.sort(np.asarray(members, dtype=np.intp)))
            for members in clusters
            if members
        ]
        elapsed = time.perf_counter() - started  # repro-lint: disable=CLK001
        return ChunkingResult(
            original=collection,
            retained=collection,
            chunk_set=ChunkSet(collection, chunks),
            outlier_rows=np.empty(0, dtype=np.intp),
            build_info={
                "build_seconds": elapsed,
                "occupied_cells": float(len(cells)),
                "max_chunk_size": float(self.max_chunk_size),
            },
        )
