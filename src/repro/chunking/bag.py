"""The BAG clustering algorithm (Berrani, Amsaleg, Gros — CIKM 2003).

Reimplemented from the paper's section 3 description.  BAG "tries to create
clusters of minimal volume in order to maximize the intra-cluster
similarity"; it is derived from the first phase of BIRCH and outputs
hyper-spherical clusters identified by centroid and minimum bounding
radius.

Algorithm (one *pass* = the paper's "step"):

1. Start with one zero-radius cluster per descriptor.
2. Scan the current clusters.  A cluster may merge with another iff the
   radius of the merged cluster is smaller than the radius of the larger of
   the two plus **MPI** (the Maximum Possible Increment).  On a merge the
   new centroid and the new minimum bounding radius are computed; a cluster
   that does not merge has its radius incremented by MPI (its radius
   becomes non-minimal).  Each cluster takes exactly one action per pass.
3. At the end of each pass the average cluster population is computed and
   every cluster holding fewer than ``destroy_fraction`` (20 % in the
   paper) of that average is destroyed, its descriptors re-entering as
   zero-radius singletons.
4. When the cluster count falls below a user threshold the algorithm
   stops; clusters that are still too small are destroyed and their
   descriptors become **outliers**.

Fidelity notes
--------------
* The original "examines all existing clusters every time a cluster is
  checked" — an O(m) scan per cluster per pass that made the paper's run
  take ~12 days on 5M descriptors.  We keep the same merge semantics but
  search merge partners among the ``candidate_checks`` nearest centroids
  (computed in one vectorized pass, refreshed lazily when candidates were
  consumed by earlier merges).  The nearest feasible partner is the one an
  exhaustive scan would overwhelmingly select, since the merged radius
  grows with centroid distance.
* The paper generated its SMALL/MEDIUM/LARGE clusterings "in succession";
  :meth:`BagClusterer.run_with_snapshots` mirrors that: one clustering run,
  snapshotting whenever the cluster count first falls below each requested
  threshold.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..core.chunk import Chunk, ChunkSet
from ..core.dataset import DescriptorCollection
from .base import Chunker, ChunkingResult

__all__ = ["BagClusterer", "BagSnapshot", "estimate_mpi"]


def estimate_mpi(
    collection: DescriptorCollection,
    sample_size: int = 2000,
    factor: float = 0.5,
    seed: int = 0,
) -> float:
    """Heuristic MPI: a fraction of the median nearest-neighbor distance.

    MPI controls how fast radii may grow per pass; tying it to the typical
    nearest-neighbor spacing makes the pass count insensitive to the
    absolute scale of the data.
    """
    n = len(collection)
    if n < 2:
        raise ValueError("need at least two descriptors to estimate MPI")
    rng = np.random.default_rng(seed)
    take = min(sample_size, n)
    rows = rng.choice(n, size=take, replace=False)
    sample = collection.vectors[rows].astype(np.float64)
    diffs = sample[:, np.newaxis, :] - sample[np.newaxis, :, :]
    d2 = np.einsum("ijk,ijk->ij", diffs, diffs)
    np.fill_diagonal(d2, np.inf)
    nn = np.sqrt(d2.min(axis=1))
    return float(np.median(nn) * factor)


class _Cluster:
    """Internal mutable cluster state."""

    __slots__ = ("rows", "centroid", "radius")

    def __init__(self, rows: List[int], centroid: np.ndarray, radius: float):
        self.rows = rows
        self.centroid = centroid
        self.radius = radius

    @property
    def size(self) -> int:
        return len(self.rows)


@dataclasses.dataclass
class BagSnapshot:
    """Cluster state captured when the count crossed one threshold."""

    threshold: int
    passes_run: int
    rows_per_cluster: List[np.ndarray]


class BagClusterer(Chunker):
    """BAG chunk-forming strategy.

    Parameters
    ----------
    mpi:
        Maximum Possible Increment for radii (data-scale dependent; see
        :func:`estimate_mpi`).
    target_clusters:
        Terminate once the cluster count falls to or below this.
    destroy_fraction:
        Per-pass destruction threshold as a fraction of the mean cluster
        population (0.2 in the paper).
    final_outlier_fraction:
        Final destruction threshold; descriptors of destroyed clusters
        become outliers.
    candidate_checks:
        How many nearest clusters are tested as merge partners per scan.
    max_passes:
        Safety bound on the pass loop.
    partner_ranking:
        How merge partners are ordered: ``"centroid"`` (default) ranks by
        centroid distance, merging locally; ``"surface"`` ranks by
        ``d(centroids) - radius`` which favors large inflated clusters and
        produces much more aggressive absorption dynamics.
    """

    name = "BAG"

    def __init__(
        self,
        mpi: float,
        target_clusters: int,
        destroy_fraction: float = 0.2,
        final_outlier_fraction: float = 0.2,
        candidate_checks: int = 4,
        max_passes: int = 200,
        partner_ranking: str = "centroid",
    ):
        if mpi <= 0:
            raise ValueError(f"MPI must be positive, got {mpi}")
        if target_clusters < 1:
            raise ValueError("target cluster count must be at least 1")
        if not 0.0 <= destroy_fraction < 1.0:
            raise ValueError("destroy_fraction must be in [0, 1)")
        if not 0.0 <= final_outlier_fraction < 1.0:
            raise ValueError("final_outlier_fraction must be in [0, 1)")
        if candidate_checks < 1:
            raise ValueError("candidate_checks must be at least 1")
        if max_passes < 1:
            raise ValueError("max_passes must be at least 1")
        if partner_ranking not in ("centroid", "surface"):
            raise ValueError(f"unknown partner_ranking {partner_ranking!r}")
        self.partner_ranking = partner_ranking
        self.mpi = float(mpi)
        self.target_clusters = int(target_clusters)
        self.destroy_fraction = float(destroy_fraction)
        self.final_outlier_fraction = float(final_outlier_fraction)
        self.candidate_checks = int(candidate_checks)
        self.max_passes = int(max_passes)

    # -- public API -----------------------------------------------------------

    def form_chunks(self, collection: DescriptorCollection) -> ChunkingResult:
        """Run to the configured threshold and finalize one chunk index."""
        snapshots = self.run_with_snapshots(collection, [self.target_clusters])
        return self.finalize(collection, snapshots[0])

    def run_with_snapshots(
        self,
        collection: DescriptorCollection,
        thresholds: Sequence[int],
    ) -> List[BagSnapshot]:
        """One clustering run, snapshotting at each (descending) threshold.

        ``thresholds`` are cluster-count targets; they are sorted
        descending internally (the run crosses larger counts first), and a
        snapshot is captured the first time the live cluster count falls to
        or below each.
        """
        if len(collection) == 0:
            raise ValueError("cannot cluster an empty collection")
        pending = sorted(set(int(t) for t in thresholds), reverse=True)
        if not pending:
            raise ValueError("need at least one threshold")
        if pending[-1] < 1:
            raise ValueError("thresholds must be positive")

        vectors = collection.vectors.astype(np.float64)
        clusters: List[_Cluster] = [
            _Cluster([row], vectors[row].copy(), 0.0) for row in range(len(collection))
        ]
        snapshots: List[BagSnapshot] = []
        passes = 0

        def capture(count: int, materialize: Callable[[], List[_Cluster]]) -> None:
            """Snapshot every threshold the live count has fallen to.

            Called after every state change — including after individual
            merges inside a pass, since a single avalanche pass can step
            the count past several thresholds at once; the paper terminates
            "at that time", i.e. the moment the count crosses.

            ``materialize`` lazily produces the live cluster list, so the
            common no-crossing case costs one integer comparison.
            """
            while pending and count <= pending[0]:
                snapshots.append(
                    BagSnapshot(
                        threshold=pending.pop(0),
                        passes_run=passes,
                        rows_per_cluster=[
                            np.asarray(c.rows, dtype=np.intp) for c in materialize()
                        ],
                    )
                )

        capture(len(clusters), lambda: clusters)
        while pending and passes < self.max_passes:
            clusters = self._run_pass(clusters, vectors, on_change=capture)
            passes += 1
            if not pending:
                break
            # Destruction re-creates singletons and can push the count back
            # above a threshold already crossed; check again afterwards.
            clusters = self._destroy_small(clusters, vectors, self.destroy_fraction)
            capture(len(clusters), lambda: clusters)

        if pending:
            raise RuntimeError(
                f"BAG did not reach cluster count {pending[0]} within "
                f"{self.max_passes} passes ({len(clusters)} clusters remain); "
                "increase mpi or max_passes"
            )
        return snapshots

    def finalize(
        self, collection: DescriptorCollection, snapshot: BagSnapshot
    ) -> ChunkingResult:
        """Apply final outlier removal and build the chunk set.

        Chunk centroids and radii are recomputed exactly from the member
        descriptors (BAG's working radii are non-minimal after increments;
        the chunk index stores minimum bounding radii).
        """
        sizes = np.asarray([rows.size for rows in snapshot.rows_per_cluster])
        mean_size = sizes.mean()
        keep_cluster = sizes >= self.final_outlier_fraction * mean_size
        if not keep_cluster.any():
            raise RuntimeError("final outlier removal destroyed every cluster")

        outlier_rows = (
            np.concatenate(
                [
                    rows
                    for rows, keep in zip(snapshot.rows_per_cluster, keep_cluster)
                    if not keep
                ]
            )
            if not keep_cluster.all()
            else np.empty(0, dtype=np.intp)
        )
        keep_mask = np.ones(len(collection), dtype=bool)
        keep_mask[outlier_rows] = False
        retained = collection.mask(keep_mask)

        # Map original rows to retained rows.
        new_row = np.cumsum(keep_mask) - 1
        chunks = [
            Chunk.from_rows(retained, new_row[rows])
            for rows, keep in zip(snapshot.rows_per_cluster, keep_cluster)
            if keep
        ]
        return ChunkingResult(
            original=collection,
            retained=retained,
            chunk_set=ChunkSet(retained, chunks),
            outlier_rows=np.sort(outlier_rows),
            build_info={
                "passes_run": float(snapshot.passes_run),
                "threshold": float(snapshot.threshold),
                "mpi": self.mpi,
            },
        )

    # -- the pass -----------------------------------------------------------------

    def _run_pass(
        self,
        clusters: List[_Cluster],
        vectors: np.ndarray,
        on_change: Optional[Callable[[List[_Cluster]], None]] = None,
    ) -> List[_Cluster]:
        """One scan over the cluster list.

        Each cluster is analyzed once: it either merges (into the best
        available partner) or has its radius incremented by MPI.  A cluster
        that already merged this pass is not re-analyzed, but it remains a
        valid merge *target* for clusters analyzed later — the paper's
        "merged into larger clusters" wording constrains the analyzed
        cluster, not the target, and large clusters do absorb many small
        ones within one pass.

        ``on_change(count, materialize)``, when given, is invoked after
        every merge with the live cluster count and a lazy materializer of
        the live list, so callers can snapshot threshold crossings
        mid-pass without paying to build the list each time.
        """
        m = len(clusters)
        if m <= 1:
            for cluster in clusters:
                cluster.radius += self.mpi
            return clusters

        centroids = np.stack([c.centroid for c in clusters]).astype(np.float32)
        radii = np.asarray([c.radius for c in clusters], dtype=np.float64)
        sizes = np.asarray([c.size for c in clusters], dtype=np.int64)
        alive = np.ones(m, dtype=bool)
        acted = np.zeros(m, dtype=bool)  # analyzed this pass (merged or incremented)
        live_count = m
        candidates = self._surface_candidates(centroids, radii)

        for i in range(m):
            if not alive[i] or acted[i]:
                continue
            merged_into = None
            for j in self._iter_partners(i, candidates[i], alive, centroids, radii):
                merged = self._try_merge(clusters[i], clusters[j], vectors)
                if merged is not None:
                    merged_into = j
                    break
            if merged_into is None:
                clusters[i].radius += self.mpi
                radii[i] += self.mpi
                acted[i] = True
                continue
            # Store the merged cluster at the larger side's slot; it stays
            # alive as a target but will not be analyzed again this pass.
            j = merged_into
            keep, drop = (i, j) if sizes[i] >= sizes[j] else (j, i)
            clusters[keep] = merged
            alive[drop] = False
            acted[keep] = True
            centroids[keep] = merged.centroid.astype(np.float32)
            radii[keep] = merged.radius
            sizes[keep] = merged.size
            live_count -= 1
            if on_change is not None:
                on_change(
                    live_count,
                    lambda: [clusters[x] for x in range(m) if alive[x]],
                )

        return [clusters[i] for i in range(m) if alive[i]]

    def _surface_candidates(
        self, centroids: np.ndarray, radii: np.ndarray
    ) -> np.ndarray:
        """``(m, K)`` merge-candidate lists, best first.

        With ``partner_ranking="centroid"`` candidates are the nearest
        centroids — merges stay local, matching an exhaustive scan that
        prefers the partner minimizing the merged radius.  With
        ``"surface"`` the score is ``d(c_i, c_j) - r_j``: a partner with a
        large (possibly MPI-inflated) radius tolerates a larger merged
        radius, so absorption by big clusters is strongly favored.
        """
        m = centroids.shape[0]
        k = min(self.candidate_checks, m - 1)
        out = np.empty((m, k), dtype=np.intp)
        block = max(1, int(2_000_000 // max(m, 1)))
        sq_norms = np.einsum("ij,ij->i", centroids, centroids)
        use_surface = self.partner_ranking == "surface"
        radii32 = radii.astype(np.float32)
        for start in range(0, m, block):
            stop = min(start + block, m)
            cross = centroids[start:stop] @ centroids.T
            d2 = sq_norms[np.newaxis, :] - 2.0 * cross + sq_norms[start:stop, np.newaxis]
            np.maximum(d2, 0.0, out=d2)
            if use_surface:
                score = np.sqrt(d2) - radii32[np.newaxis, :]
            else:
                score = d2
            rows = np.arange(start, stop)
            score[rows - start, rows] = np.inf
            part = np.argpartition(score, k - 1, axis=1)[:, :k]
            part_s = np.take_along_axis(score, part, axis=1)
            order = np.argsort(part_s, axis=1, kind="stable")
            out[start:stop] = np.take_along_axis(part, order, axis=1)
        return out

    def _iter_partners(
        self,
        i: int,
        candidate_row: np.ndarray,
        alive: np.ndarray,
        centroids: np.ndarray,
        radii: np.ndarray,
    ):
        """Yield partner candidates for cluster ``i``: the precomputed
        surface-nearest ones first, then (if all were consumed by earlier
        merges) the current best recomputed fresh."""
        yielded = 0
        for j in candidate_row:
            if alive[j] and j != i:
                yielded += 1
                yield int(j)
        if yielded:
            return
        usable = alive.copy()
        usable[i] = False
        if not usable.any():
            return
        diffs = centroids[usable].astype(np.float64) - centroids[i].astype(np.float64)
        score = np.sqrt(np.einsum("ij,ij->i", diffs, diffs))
        if self.partner_ranking == "surface":
            score -= radii[usable]
        yield int(np.flatnonzero(usable)[int(np.argmin(score))])

    def _try_merge(
        self, a: _Cluster, b: _Cluster, vectors: np.ndarray
    ) -> Optional[_Cluster]:
        """Merge test from the paper: the merged minimum bounding radius
        must stay below the larger radius plus MPI."""
        rows = a.rows + b.rows
        points = vectors[rows]
        centroid = points.mean(axis=0)
        diffs = points - centroid
        radius = float(np.sqrt(np.einsum("ij,ij->i", diffs, diffs).max()))
        if radius < max(a.radius, b.radius) + self.mpi:
            return _Cluster(rows, centroid, radius)
        return None

    def _destroy_small(
        self,
        clusters: List[_Cluster],
        vectors: np.ndarray,
        fraction: float,
    ) -> List[_Cluster]:
        """End-of-pass destruction: clusters below ``fraction`` of the mean
        population dissolve back into zero-radius singletons."""
        if fraction <= 0.0 or not clusters:
            return clusters
        sizes = np.asarray([c.size for c in clusters], dtype=np.float64)
        cutoff = fraction * sizes.mean()
        kept: List[_Cluster] = []
        reborn: List[_Cluster] = []
        for cluster, size in zip(clusters, sizes):
            if size < cutoff:
                for row in cluster.rows:
                    reborn.append(_Cluster([row], vectors[row].copy(), 0.0))
            else:
                kept.append(cluster)
        return kept + reborn
