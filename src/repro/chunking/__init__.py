"""Chunk-forming strategies.

The paper compares two extremes of the quality-vs-time design space:

* :class:`~repro.chunking.srtree_chunker.SRTreeChunker` — uniform chunk
  size from static SR-tree leaves (guarantees response time);
* :class:`~repro.chunking.bag.BagClusterer` — the BAG clustering algorithm
  (guarantees intra-chunk similarity).

Baselines and the paper's concluding proposal round out the space:

* :class:`~repro.chunking.round_robin.RoundRobinChunker` and
  :class:`~repro.chunking.random_chunker.RandomChunker` — uniform size with
  zero locality (section 1.1's strawman);
* :class:`~repro.chunking.hybrid.HybridChunker` — balanced k-means: size
  first, dissimilarity second (section 7's recommendation);
* :mod:`~repro.chunking.outliers` — the standalone norm-threshold outlier
  filter the paper cross-checked against BAG's.
"""

from .bag import BagClusterer, BagSnapshot, estimate_mpi
from .clindex import ClindexChunker
from .base import Chunker, ChunkingResult
from .hybrid import HybridChunker
from .outliers import (
    apply_outlier_rows,
    norm_fraction_outliers,
    norm_threshold_outliers,
)
from .random_chunker import RandomChunker
from .round_robin import RoundRobinChunker
from .srtree_chunker import SRTreeChunker
from .tsvq import TsvqChunker

__all__ = [
    "BagClusterer",
    "BagSnapshot",
    "estimate_mpi",
    "ClindexChunker",
    "TsvqChunker",
    "Chunker",
    "ChunkingResult",
    "HybridChunker",
    "apply_outlier_rows",
    "norm_fraction_outliers",
    "norm_threshold_outliers",
    "RandomChunker",
    "RoundRobinChunker",
    "SRTreeChunker",
]
