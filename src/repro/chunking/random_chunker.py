"""Random chunking baseline.

Shuffles descriptors and deals them into equal chunks.  Statistically
equivalent to round-robin in expected quality (no spatial coherence) but
with a seedable permutation, which makes it the preferred random baseline
for repeated trials.
"""

from __future__ import annotations

import numpy as np

from ..core.chunk import Chunk, ChunkSet
from ..core.dataset import DescriptorCollection
from .base import Chunker, ChunkingResult

__all__ = ["RandomChunker"]


class RandomChunker(Chunker):
    """Deal a seeded random permutation into near-equal chunks."""

    name = "RAND"

    def __init__(self, n_chunks: int, seed: int = 0):
        if n_chunks < 1:
            raise ValueError(f"need at least one chunk, got {n_chunks}")
        self.n_chunks = int(n_chunks)
        self.seed = int(seed)

    def form_chunks(self, collection: DescriptorCollection) -> ChunkingResult:
        n = len(collection)
        if n == 0:
            raise ValueError("cannot chunk an empty collection")
        n_chunks = min(self.n_chunks, n)
        rng = np.random.default_rng(self.seed)
        permutation = rng.permutation(n)
        groups = np.array_split(permutation, n_chunks)
        chunks = [Chunk.from_rows(collection, np.sort(rows)) for rows in groups]
        return ChunkingResult(
            original=collection,
            retained=collection,
            chunk_set=ChunkSet(collection, chunks),
            outlier_rows=np.empty(0, dtype=np.intp),
            build_info={"n_chunks": float(n_chunks), "seed": float(self.seed)},
        )
