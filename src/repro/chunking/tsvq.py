"""TSVQ chunker: tree-structured vector quantization.

Gersho & Gray's TSVQ is the baseline that Clindex (Li et al., TKDE 2002)
— the paper that introduced "clustering for indexing" — compared its CF
algorithm against.  Including it completes the chunker family the paper's
related-work section discusses.

The structure is a binary k-means tree: starting from the whole
collection, each node is split with 2-means until its population fits the
chunk-size bound; the leaves become chunks.  TSVQ chunks are spatially
coherent and bounded in size, but the greedy binary splits can slice
natural clusters (the known weakness versus density-based methods).
"""

from __future__ import annotations

import time
from typing import List, Tuple

import numpy as np

from ..core.chunk import Chunk, ChunkSet
from ..core.dataset import DescriptorCollection
from .base import Chunker, ChunkingResult

__all__ = ["TsvqChunker"]


class TsvqChunker(Chunker):
    """Binary k-means tree quantization into bounded-size chunks.

    Parameters
    ----------
    max_chunk_size:
        A leaf stops splitting once its population is at most this.
    lloyd_iterations:
        2-means refinement iterations per split.
    seed:
        Seed for split initialization.
    """

    name = "TSVQ"

    def __init__(
        self,
        max_chunk_size: int,
        lloyd_iterations: int = 6,
        seed: int = 0,
    ):
        if max_chunk_size < 1:
            raise ValueError("max chunk size must be positive")
        if lloyd_iterations < 1:
            raise ValueError("need at least one Lloyd iteration")
        self.max_chunk_size = int(max_chunk_size)
        self.lloyd_iterations = int(lloyd_iterations)
        self.seed = int(seed)

    def _split_two_means(
        self, vectors: np.ndarray, rows: np.ndarray, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One 2-means split; returns (left_rows, right_rows)."""
        points = vectors[rows]
        # Initialize with the two most distant of a small sample.
        sample = rows if rows.size <= 32 else rng.choice(rows, 32, replace=False)
        sample_points = vectors[sample]
        d2 = (
            np.einsum("id,id->i", sample_points, sample_points)[:, np.newaxis]
            - 2.0 * (sample_points @ sample_points.T)
            + np.einsum("id,id->i", sample_points, sample_points)[np.newaxis, :]
        )
        i, j = np.unravel_index(np.argmax(d2), d2.shape)
        centers = np.stack([sample_points[i], sample_points[j]]).astype(np.float64)

        assignment = np.zeros(rows.size, dtype=np.intp)
        for _ in range(self.lloyd_iterations):
            d_left = np.einsum(
                "id,id->i", points - centers[0], points - centers[0]
            )
            d_right = np.einsum(
                "id,id->i", points - centers[1], points - centers[1]
            )
            new_assignment = (d_right < d_left).astype(np.intp)
            if np.array_equal(new_assignment, assignment) and _ > 0:
                break
            assignment = new_assignment
            for c in (0, 1):
                members = points[assignment == c]
                if members.size:
                    centers[c] = members.mean(axis=0)
        left = rows[assignment == 0]
        right = rows[assignment == 1]
        if left.size == 0 or right.size == 0:
            # Degenerate split (duplicate points): cut by median position.
            half = rows.size // 2
            left, right = rows[:half], rows[half:]
        return left, right

    def form_chunks(self, collection: DescriptorCollection) -> ChunkingResult:
        n = len(collection)
        if n == 0:
            raise ValueError("cannot chunk an empty collection")
        # Build-time wall-clock measurement: feeds build_info only,
        # never the simulated query cost (hence the lint waiver).
        started = time.perf_counter()  # repro-lint: disable=CLK001
        rng = np.random.default_rng(self.seed)
        vectors = collection.vectors.astype(np.float64)

        leaves: List[np.ndarray] = []
        stack = [np.arange(n, dtype=np.intp)]
        while stack:
            rows = stack.pop()
            if rows.size <= self.max_chunk_size:
                leaves.append(rows)
                continue
            left, right = self._split_two_means(vectors, rows, rng)
            stack.append(left)
            stack.append(right)

        chunks = [Chunk.from_rows(collection, np.sort(rows)) for rows in leaves]
        elapsed = time.perf_counter() - started  # repro-lint: disable=CLK001
        return ChunkingResult(
            original=collection,
            retained=collection,
            chunk_set=ChunkSet(collection, chunks),
            outlier_rows=np.empty(0, dtype=np.intp),
            build_info={
                "build_seconds": elapsed,
                "max_chunk_size": float(self.max_chunk_size),
                "n_leaves": float(len(leaves)),
            },
        )
