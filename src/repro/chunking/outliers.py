"""Standalone outlier filters.

The paper removes outliers with BAG itself (small final clusters), but
notes an alternative it validated for the SR-tree path: "we tested another
simpler outlier removal scheme for the SR-tree, namely removing all
descriptors with total length greater than a constant, and that method gave
almost identical results" (section 5.2).

Both filters return the row positions to discard; callers mask the
collection before chunking.  The outlier-handling ablation benchmark
compares the two schemes end to end.
"""

from __future__ import annotations

import numpy as np

from ..core.dataset import DescriptorCollection

__all__ = ["norm_threshold_outliers", "norm_fraction_outliers", "apply_outlier_rows"]


def norm_threshold_outliers(
    collection: DescriptorCollection, max_norm: float
) -> np.ndarray:
    """Rows whose descriptor norm exceeds ``max_norm`` (the paper's simple
    scheme: "removing all descriptors with total length greater than a
    constant").  Returns sorted row indices, dtype intp."""
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    return np.flatnonzero(collection.norms() > max_norm)


def norm_fraction_outliers(
    collection: DescriptorCollection, fraction: float
) -> np.ndarray:
    """Rows of the ``fraction`` largest-norm descriptors (dtype intp).

    A convenience calibration of the constant-threshold scheme: choose the
    constant so that a target fraction (e.g. the 8-12 % BAG discards) is
    removed.
    """
    if not 0.0 <= fraction < 1.0:
        raise ValueError(f"fraction must be in [0, 1), got {fraction}")
    n = len(collection)
    n_out = int(round(n * fraction))
    if n_out == 0:
        return np.empty(0, dtype=np.intp)
    norms = collection.norms()
    # Largest-norm rows; ties broken deterministically by row position.
    order = np.lexsort((np.arange(n), -norms))
    return np.sort(order[:n_out])


def apply_outlier_rows(
    collection: DescriptorCollection, outlier_rows: np.ndarray
) -> DescriptorCollection:
    """Collection with the given rows removed."""
    keep = np.ones(len(collection), dtype=bool)
    keep[np.asarray(outlier_rows, dtype=np.intp)] = False
    return collection.mask(keep)
