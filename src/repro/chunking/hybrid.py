"""Hybrid chunker: uniform size first, dissimilarity second.

The paper's conclusion: "we should use a clustering algorithm which keeps
uniform chunk size as the first priority, but attempts to achieve the
smallest possible intra-chunk dissimilarity."  This module implements that
proposal as *balanced k-means*: Lloyd iterations for locality, followed by
a balancing step that reassigns points from over-full clusters to their
next-best under-full cluster, so every chunk ends within a bounded factor
of the target size.

This is the forward-looking strategy the paper's results argue for, and the
`bench_ablation_hybrid` benchmark pits it against both extremes.
"""

from __future__ import annotations

import time
from typing import List

import numpy as np

from ..core.chunk import Chunk, ChunkSet
from ..core.dataset import DescriptorCollection
from .base import Chunker, ChunkingResult

__all__ = ["HybridChunker"]


class HybridChunker(Chunker):
    """Balanced k-means chunk formation.

    Parameters
    ----------
    target_chunk_size:
        Desired descriptors per chunk; the chunk count is derived as
        ``ceil(n / target_chunk_size)``.
    max_size_factor:
        Hard cap on a chunk's size as a multiple of the target (the
        "uniform size first" guarantee).
    lloyd_iterations:
        K-means refinement iterations before balancing.
    seed:
        Seed for the k-means++-style center initialization.
    """

    name = "HYB"

    def __init__(
        self,
        target_chunk_size: int,
        max_size_factor: float = 1.25,
        lloyd_iterations: int = 8,
        seed: int = 0,
    ):
        if target_chunk_size < 1:
            raise ValueError("target chunk size must be positive")
        if max_size_factor < 1.0:
            raise ValueError("max_size_factor must be at least 1")
        if lloyd_iterations < 0:
            raise ValueError("lloyd_iterations cannot be negative")
        self.target_chunk_size = int(target_chunk_size)
        self.max_size_factor = float(max_size_factor)
        self.lloyd_iterations = int(lloyd_iterations)
        self.seed = int(seed)

    # -- k-means machinery ------------------------------------------------------

    def _init_centers(
        self, vectors: np.ndarray, k: int, rng: np.random.Generator
    ) -> np.ndarray:
        """k-means++ seeding (distance-proportional sampling)."""
        n = vectors.shape[0]
        centers = np.empty((k, vectors.shape[1]), dtype=np.float64)
        centers[0] = vectors[rng.integers(n)]
        d2 = np.full(n, np.inf)
        for c in range(1, k):
            diffs = vectors - centers[c - 1]
            d2 = np.minimum(d2, np.einsum("ij,ij->i", diffs, diffs))
            total = d2.sum()
            if total <= 0:
                centers[c] = vectors[rng.integers(n)]
                continue
            centers[c] = vectors[rng.choice(n, p=d2 / total)]
        return centers

    def _assign(self, vectors: np.ndarray, centers: np.ndarray) -> np.ndarray:
        """Nearest-center assignment, blockwise."""
        n = vectors.shape[0]
        out = np.empty(n, dtype=np.intp)
        c_norms = np.einsum("ij,ij->i", centers, centers)
        block = max(1, 4_000_000 // max(centers.shape[0], 1))
        for start in range(0, n, block):
            stop = min(start + block, n)
            cross = vectors[start:stop] @ centers.T
            d2 = c_norms[np.newaxis, :] - 2.0 * cross
            out[start:stop] = np.argmin(d2, axis=1)
        return out

    def _balance(
        self, vectors: np.ndarray, centers: np.ndarray, assignment: np.ndarray
    ) -> np.ndarray:
        """Move points out of over-cap clusters into their next-best
        under-cap cluster, farthest-from-centroid points first."""
        k = centers.shape[0]
        cap = int(np.ceil(self.target_chunk_size * self.max_size_factor))
        counts = np.bincount(assignment, minlength=k)
        c_norms = np.einsum("ij,ij->i", centers, centers)
        assignment = assignment.copy()
        for cluster in np.flatnonzero(counts > cap):
            members = np.flatnonzero(assignment == cluster)
            diffs = vectors[members] - centers[cluster]
            d2 = np.einsum("ij,ij->i", diffs, diffs)
            evict = members[np.argsort(-d2, kind="stable")][: counts[cluster] - cap]
            for row in evict:
                d2_all = c_norms - 2.0 * (vectors[row] @ centers.T)
                for candidate in np.argsort(d2_all, kind="stable"):
                    if candidate != cluster and counts[candidate] < cap:
                        assignment[row] = candidate
                        counts[cluster] -= 1
                        counts[candidate] += 1
                        break
        return assignment

    # -- public API ----------------------------------------------------------------

    def form_chunks(self, collection: DescriptorCollection) -> ChunkingResult:
        n = len(collection)
        if n == 0:
            raise ValueError("cannot chunk an empty collection")
        # Build-time wall-clock measurement: feeds build_info only,
        # never the simulated query cost (hence the lint waiver).
        started = time.perf_counter()  # repro-lint: disable=CLK001
        k = max(1, -(-n // self.target_chunk_size))
        vectors = collection.vectors.astype(np.float64)
        rng = np.random.default_rng(self.seed)

        centers = self._init_centers(vectors, k, rng)
        assignment = self._assign(vectors, centers)
        for _ in range(self.lloyd_iterations):
            for c in range(k):
                members = assignment == c
                if members.any():
                    centers[c] = vectors[members].mean(axis=0)
            new_assignment = self._assign(vectors, centers)
            if np.array_equal(new_assignment, assignment):
                break
            assignment = new_assignment
        assignment = self._balance(vectors, centers, assignment)

        chunks: List[Chunk] = []
        for c in range(k):
            rows = np.flatnonzero(assignment == c)
            if rows.size:
                chunks.append(Chunk.from_rows(collection, rows))
        elapsed = time.perf_counter() - started  # repro-lint: disable=CLK001
        return ChunkingResult(
            original=collection,
            retained=collection,
            chunk_set=ChunkSet(collection, chunks),
            outlier_rows=np.empty(0, dtype=np.intp),
            build_info={
                "build_seconds": elapsed,
                "k": float(k),
                "max_size_factor": self.max_size_factor,
            },
        )
