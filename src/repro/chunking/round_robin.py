"""Round-robin chunking — the paper's quality strawman.

Section 1.1: "by distributing descriptors to chunks in a round-robin
manner, chunks of uniform size are obtained, but the quality will suffer."
Descriptor ``i`` goes to chunk ``i mod n_chunks``: perfectly uniform sizes,
no spatial coherence at all.  Used as a lower-bound baseline in the
chunker-comparison ablation.
"""

from __future__ import annotations

import numpy as np

from ..core.chunk import Chunk, ChunkSet
from ..core.dataset import DescriptorCollection
from .base import Chunker, ChunkingResult

__all__ = ["RoundRobinChunker"]


class RoundRobinChunker(Chunker):
    """Assign descriptor ``i`` to chunk ``i mod n_chunks``."""

    name = "RR"

    def __init__(self, n_chunks: int):
        if n_chunks < 1:
            raise ValueError(f"need at least one chunk, got {n_chunks}")
        self.n_chunks = int(n_chunks)

    def form_chunks(self, collection: DescriptorCollection) -> ChunkingResult:
        n = len(collection)
        if n == 0:
            raise ValueError("cannot chunk an empty collection")
        n_chunks = min(self.n_chunks, n)
        assignment = np.arange(n) % n_chunks
        chunks = [
            Chunk.from_rows(collection, np.flatnonzero(assignment == c))
            for c in range(n_chunks)
        ]
        return ChunkingResult(
            original=collection,
            retained=collection,
            chunk_set=ChunkSet(collection, chunks),
            outlier_rows=np.empty(0, dtype=np.intp),
            build_info={"n_chunks": float(n_chunks)},
        )
