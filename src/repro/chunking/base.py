"""Chunk-forming strategy interface.

Every strategy consumes a :class:`~repro.core.dataset.DescriptorCollection`
and produces a :class:`ChunkingResult`: the retained descriptors grouped
into chunks, plus the rows it discarded as outliers (only BAG discards any
by itself; see :mod:`repro.chunking.outliers` for the standalone filters).

Table 1 of the paper is exactly the summary of a list of these results:
retained/discarded counts, outlier percentage, chunk count and mean chunk
size per strategy and size class.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Dict

import numpy as np

from ..core.chunk import ChunkSet
from ..core.dataset import DescriptorCollection

__all__ = ["Chunker", "ChunkingResult"]


@dataclasses.dataclass
class ChunkingResult:
    """Outcome of one chunk-forming run.

    Attributes
    ----------
    original:
        The input collection.
    retained:
        The sub-collection that made it into chunks.
    chunk_set:
        Chunks over ``retained`` (member rows index into ``retained``).
    outlier_rows:
        Row positions *in the original collection* that were discarded.
    build_info:
        Free-form strategy diagnostics (passes run, merge counts, build
        seconds, ...), surfaced by the experiment reports.
    """

    original: DescriptorCollection
    retained: DescriptorCollection
    chunk_set: ChunkSet
    outlier_rows: np.ndarray
    build_info: Dict[str, float] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        self.outlier_rows = np.asarray(self.outlier_rows, dtype=np.intp)
        if len(self.retained) + self.outlier_rows.size != len(self.original):
            raise ValueError(
                "retained descriptors + outliers must account for the whole "
                f"collection ({len(self.retained)} + {self.outlier_rows.size} "
                f"!= {len(self.original)})"
            )
        if self.chunk_set.collection is not self.retained:
            raise ValueError("chunk set must be built over the retained collection")

    # -- Table 1 quantities --------------------------------------------------

    @property
    def n_retained(self) -> int:
        return len(self.retained)

    @property
    def n_outliers(self) -> int:
        return int(self.outlier_rows.size)

    @property
    def outlier_fraction(self) -> float:
        if len(self.original) == 0:
            return 0.0
        return self.n_outliers / len(self.original)

    @property
    def n_chunks(self) -> int:
        return len(self.chunk_set)

    @property
    def mean_chunk_size(self) -> float:
        return self.chunk_set.average_size()

    def validate(self) -> None:
        """Check the full partition + bounding invariants."""
        self.chunk_set.validate()
        if not self.chunk_set.is_partition():
            raise ValueError("chunks must partition the retained collection")
        if np.unique(self.outlier_rows).size != self.outlier_rows.size:
            raise ValueError("duplicate outlier rows")


class Chunker(abc.ABC):
    """A chunk-forming strategy."""

    #: Short label used in experiment tables ("BAG", "SR", ...).
    name: str = "chunker"

    @abc.abstractmethod
    def form_chunks(self, collection: DescriptorCollection) -> ChunkingResult:
        """Group the collection into chunks."""

    def __repr__(self) -> str:
        params = ", ".join(
            f"{key}={value!r}"
            for key, value in sorted(vars(self).items())
            if not key.startswith("_")
        )
        return f"{type(self).__name__}({params})"
