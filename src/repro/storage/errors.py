"""Typed errors for the on-disk formats.

:class:`CorruptFileError` subclasses :class:`IOError` so existing
``except IOError`` handlers (and tests matching on message substrings)
keep working, while callers that care can catch corruption specifically
— e.g. a serving layer that wants to quarantine a bad shard rather than
retry the read.
"""

from __future__ import annotations

__all__ = ["CorruptFileError", "ChecksumError", "MAX_DIMENSIONS"]

#: Upper bound accepted for the ``dims`` header field of any on-disk
#: format.  The paper's descriptors are 24-d; anything above this is a
#: corrupted or hostile header, not a real collection — and because
#: per-record byte size scales with ``dims``, an unchecked huge value
#: defeats the payload-size guard on ``count`` (small count x enormous
#: record size still allocates gigabytes).
MAX_DIMENSIONS = 1 << 16


class CorruptFileError(IOError):
    """An on-disk structure failed validation while being read.

    Raised for bad magic, unsupported versions, implausible header
    fields (negative/overflowing counts or dimensions) and truncated
    payloads in the collection, index and chunk files.
    """


class ChecksumError(CorruptFileError):
    """A payload's stored CRC32 did not match its contents.

    The distinguishing failure mode: the file *structure* is intact (the
    header parsed, the bytes were all there) but the data itself was
    silently altered — a flipped bit, a torn write.  Kept separate from
    plain :class:`CorruptFileError` so fault drills can assert that
    byte-level damage is caught by the checksum layer specifically, not
    by a lucky decode failure downstream.
    """
