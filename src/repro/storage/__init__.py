"""On-disk layout of the chunk index (paper section 4.2).

Two files make up a chunk index:

* the **chunk file** (:mod:`repro.storage.chunk_file`) — descriptors grouped
  by chunk, each chunk padded to whole disk pages, chunks stored
  sequentially;
* the **index file** (:mod:`repro.storage.index_file`) — one entry per chunk
  holding its centroid, minimum bounding radius, and page extent, in the
  same order as the chunk file.

:mod:`repro.storage.pages` defines the shared page geometry and
:mod:`repro.storage.records` the paper's 100-byte descriptor record codec.
"""

from .atomic import atomic_output, fsync_directory
from .chunk_file import (
    CHUNK_MAGIC,
    CHUNK_VERSION,
    ChunkExtent,
    ChunkFileReader,
    ChunkFileWriter,
)
from .collection_file import (
    COLLECTION_MAGIC,
    read_collection_file,
    write_collection_file,
)
from .delta import DeltaSegment, read_delta_segment, write_delta_segment
from .errors import MAX_DIMENSIONS, ChecksumError, CorruptFileError
from .index_file import index_file_bytes, read_index_file, write_index_file
from .pages import DEFAULT_PAGE_BYTES, PageGeometry
from .records import RecordCodec
from .wal import (
    WalBatch,
    WalOp,
    WalScan,
    WalWriter,
    delete_op,
    insert_op,
    scan_wal,
    truncate_wal,
)

__all__ = [
    "ChunkExtent",
    "CHUNK_MAGIC",
    "CHUNK_VERSION",
    "ChecksumError",
    "CorruptFileError",
    "MAX_DIMENSIONS",
    "atomic_output",
    "fsync_directory",
    "DeltaSegment",
    "read_delta_segment",
    "write_delta_segment",
    "WalOp",
    "WalBatch",
    "WalScan",
    "WalWriter",
    "insert_op",
    "delete_op",
    "scan_wal",
    "truncate_wal",
    "COLLECTION_MAGIC",
    "read_collection_file",
    "write_collection_file",
    "ChunkFileReader",
    "ChunkFileWriter",
    "index_file_bytes",
    "read_index_file",
    "write_index_file",
    "DEFAULT_PAGE_BYTES",
    "PageGeometry",
    "RecordCodec",
]
