"""Checksummed write-ahead log for streaming index mutations.

Every mutation of the on-disk chunk index is made durable *before* it is
applied: the caller appends a batch of insert/delete operations, the
writer frames each one with a CRC32 and seals the batch with a commit
marker, and only after one ``flush`` + ``fsync`` (group commit — one
fsync per batch, however many operations it carries) does the batch
count as acknowledged.  Recovery replays the committed prefix and
discards everything after the last commit marker, so an acknowledged
batch is always fully applied and an unacknowledged one is either fully
applied (its commit marker reached the disk before the crash) or absent
— never a hybrid.

On-disk layout::

    header  : magic "EFF2WLOG", version u32, dims u32, tag u64
    frame*  : crc32 u32, length u32, payload (length bytes)

where each payload starts with a one-byte record type:

    INSERT (1): descriptor id i64, vector float32 x dims
    DELETE (2): descriptor id i64
    COMMIT (3): batch sequence u64, operation count u32

The CRC is computed over the payload.  A *torn tail* — a frame cut
short by a crash, or bytes whose CRC does not match — terminates the
scan: everything from the first invalid byte on (including any valid
frames not yet sealed by a commit marker) is the uncommitted suffix,
reported by :func:`scan_wal` and truncated away by the recovery path
before the log is appended to again.

This module is one of the two sanctioned durable-write sites (the other
is :mod:`repro.storage.atomic`); the DUR001 lint rule flags direct
writes to index/chunk/WAL paths anywhere else.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import BinaryIO, List, NamedTuple, Optional, Protocol, Sequence, Tuple

import numpy as np

from .errors import MAX_DIMENSIONS, CorruptFileError

__all__ = [
    "WAL_MAGIC",
    "WAL_VERSION",
    "OP_INSERT",
    "OP_DELETE",
    "WalOp",
    "WalBatch",
    "WalScan",
    "WalWriter",
    "CrashHook",
    "insert_op",
    "delete_op",
    "scan_wal",
    "truncate_wal",
]

WAL_MAGIC = b"EFF2WLOG"
WAL_VERSION = 1

#: Header: magic, version, dims, tag (the checkpoint number that created
#: this log; recovery cross-checks it against the manifest).
_HEADER = struct.Struct("<8sIIQ")
#: Frame prefix: CRC32 of the payload, payload length in bytes.
_FRAME = struct.Struct("<II")

#: Payload record types.
OP_INSERT = "insert"
OP_DELETE = "delete"
_TYPE_INSERT = 1
_TYPE_DELETE = 2
_TYPE_COMMIT = 3

_INSERT_PREFIX = struct.Struct("<Bq")
_DELETE_BODY = struct.Struct("<Bq")
_COMMIT_BODY = struct.Struct("<BQI")


class CrashHook(Protocol):
    """Structural type for seeded crash-point plans.

    Defined structurally so the storage layer never imports the faults
    package: any object with ``reached(site)`` (e.g.
    :class:`repro.faults.crash_plan.CrashPlan`) fits.
    """

    def reached(self, site: str) -> None:
        """Called at a named protocol boundary; may raise to simulate a kill."""


class WalOp(NamedTuple):
    """One logical mutation: an insert (with vector) or a delete."""

    kind: str
    descriptor_id: int
    vector: Optional[np.ndarray]


def insert_op(descriptor_id: int, vector: np.ndarray) -> WalOp:
    """An insert operation carrying a float32 descriptor vector."""
    return WalOp(OP_INSERT, int(descriptor_id), np.asarray(vector, dtype=np.float32))


def delete_op(descriptor_id: int) -> WalOp:
    """A delete operation identified by descriptor id."""
    return WalOp(OP_DELETE, int(descriptor_id), None)


class WalBatch(NamedTuple):
    """One committed batch recovered from the log."""

    batch_seq: int
    ops: Tuple[WalOp, ...]


class WalScan(NamedTuple):
    """Result of scanning a log file.

    Attributes
    ----------
    dimensions:
        Vector dimensionality from the header.
    tag:
        The creator's checkpoint number from the header.
    batches:
        Committed batches, in log order.
    valid_bytes:
        Offset just past the last commit marker (or past the header when
        no batch committed) — the recovery point.  Everything beyond it
        is the uncommitted suffix.
    total_bytes:
        Size of the file as scanned.
    discarded_ops:
        Operations found after the last commit marker (valid frames that
        never committed); they are part of the discarded suffix.
    """

    dimensions: int
    tag: int
    batches: Tuple[WalBatch, ...]
    valid_bytes: int
    total_bytes: int
    discarded_ops: int

    @property
    def torn_bytes(self) -> int:
        """Bytes of uncommitted suffix a recovery will truncate away."""
        return self.total_bytes - self.valid_bytes


def _encode_op(op: WalOp, dimensions: int) -> bytes:
    if op.kind == OP_INSERT:
        if op.vector is None:
            raise ValueError("insert op requires a vector")
        vector = np.ascontiguousarray(op.vector, dtype="<f4").reshape(-1)
        if vector.shape[0] != dimensions:
            raise ValueError(
                f"insert vector has {vector.shape[0]} dims, log holds {dimensions}"
            )
        return _INSERT_PREFIX.pack(_TYPE_INSERT, op.descriptor_id) + vector.tobytes()
    if op.kind == OP_DELETE:
        return _DELETE_BODY.pack(_TYPE_DELETE, op.descriptor_id)
    raise ValueError(f"unknown wal op kind {op.kind!r}")


def _frame(payload: bytes) -> bytes:
    return _FRAME.pack(zlib.crc32(payload), len(payload)) + payload


class WalWriter:
    """Appends framed, checksummed operation batches to a log file.

    Use :meth:`create` for a fresh log and :meth:`resume` to continue an
    existing one after a :func:`scan_wal` pass (recovery truncates the
    torn tail first, so appends always start at the recovery point).

    ``crash`` is an optional seeded crash plan; the writer announces the
    protocol boundaries ``wal.batch.frames`` (operation frames flushed,
    no commit marker yet), ``wal.batch.commit`` (commit marker flushed,
    not yet fsynced) and ``wal.batch.synced`` (fsync done, ack about to
    be returned) so a crash-point matrix can kill it at each.
    """

    def __init__(
        self,
        file: BinaryIO,
        path: str,
        dimensions: int,
        tag: int,
        next_batch_seq: int,
        crash: Optional[CrashHook] = None,
    ):
        if not 1 <= dimensions <= MAX_DIMENSIONS:
            raise ValueError(f"implausible dimensionality {dimensions}")
        self._file = file
        self._path = path
        self.dimensions = int(dimensions)
        self.tag = int(tag)
        self.next_batch_seq = int(next_batch_seq)
        self._crash = crash
        #: Total bytes appended through this writer (header included for
        #: :meth:`create`); the ingest layer charges these to the
        #: simulated disk model.
        self.bytes_written = 0

    @classmethod
    def create(
        cls,
        path: str,
        dimensions: int,
        tag: int = 0,
        next_batch_seq: int = 0,
        crash: Optional[CrashHook] = None,
    ) -> "WalWriter":
        """Create a fresh (empty) log: header only, fsynced."""
        if not 1 <= dimensions <= MAX_DIMENSIONS:
            raise ValueError(f"implausible dimensionality {dimensions}")
        file = open(path, "wb")
        try:
            header = _HEADER.pack(WAL_MAGIC, WAL_VERSION, dimensions, tag)
            file.write(header)
            file.flush()
            os.fsync(file.fileno())
        except BaseException:
            file.close()
            raise
        writer = cls(file, path, dimensions, tag, next_batch_seq, crash)
        writer.bytes_written = _HEADER.size
        return writer

    @classmethod
    def resume(
        cls,
        path: str,
        scan: WalScan,
        crash: Optional[CrashHook] = None,
    ) -> "WalWriter":
        """Continue an existing log at its recovery point.

        The file must already be truncated to ``scan.valid_bytes`` (see
        :func:`truncate_wal`); appending after a torn tail would bury
        garbage inside the committed region.
        """
        if os.path.getsize(path) != scan.valid_bytes:
            raise ValueError(
                "log must be truncated to its recovery point before resuming"
            )
        file = open(path, "ab")
        next_seq = scan.batches[-1].batch_seq + 1 if scan.batches else None
        return cls(
            file,
            path,
            scan.dimensions,
            scan.tag,
            next_seq if next_seq is not None else 0,
            crash,
        )

    def _reached(self, site: str) -> None:
        if self._crash is not None:
            self._crash.reached(site)

    def append_batch(self, ops: Sequence[WalOp]) -> int:
        """Durably append one batch; returns its sequence number.

        Group commit: all operation frames plus the commit marker are
        written and the file is fsynced exactly once.  The return *is*
        the acknowledgement — once this method returns, recovery is
        guaranteed to replay the batch.
        """
        if not ops:
            raise ValueError("a wal batch needs at least one operation")
        seq = self.next_batch_seq
        frames = b"".join(_frame(_encode_op(op, self.dimensions)) for op in ops)
        self._file.write(frames)
        self._file.flush()
        self._reached("wal.batch.frames")
        commit = _frame(_COMMIT_BODY.pack(_TYPE_COMMIT, seq, len(ops)))
        self._file.write(commit)
        self._file.flush()
        self._reached("wal.batch.commit")
        os.fsync(self._file.fileno())
        self._reached("wal.batch.synced")
        self.bytes_written += len(frames) + len(commit)
        self.next_batch_seq = seq + 1
        return seq

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "WalWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _max_payload(dimensions: int) -> int:
    return max(
        _INSERT_PREFIX.size + 4 * dimensions, _DELETE_BODY.size, _COMMIT_BODY.size
    )


def scan_wal(path: str) -> WalScan:
    """Scan a log, returning its committed batches and recovery point.

    A corrupt *header* raises :class:`CorruptFileError` — there is no
    committed state to recover.  Anything wrong after the header (short
    frame, CRC mismatch, implausible length, malformed payload) is torn-
    tail territory: the scan stops there and reports everything after
    the last commit marker as the uncommitted suffix.
    """
    with open(path, "rb") as stream:
        raw = stream.read(_HEADER.size)
        if len(raw) != _HEADER.size:
            raise CorruptFileError("wal file too short for its header")
        magic, version, dimensions, tag = _HEADER.unpack(raw)
        if magic != WAL_MAGIC:
            raise CorruptFileError(f"bad wal magic {magic!r}")
        if version != WAL_VERSION:
            raise CorruptFileError(f"unsupported wal version {version}")
        if not 1 <= dimensions <= MAX_DIMENSIONS:
            raise CorruptFileError(
                f"wal header has implausible dimensions {dimensions}"
            )
        data = stream.read()

    limit = _max_payload(dimensions)
    batches: List[WalBatch] = []
    pending: List[WalOp] = []
    discarded_in_tail = 0
    pos = 0
    valid_bytes = _HEADER.size
    while True:
        if pos + _FRAME.size > len(data):
            break
        crc, length = _FRAME.unpack_from(data, pos)
        if not 1 <= length <= limit:
            break
        start = pos + _FRAME.size
        end = start + length
        if end > len(data):
            break
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            break
        op = _decode_payload(payload, dimensions)
        if op is None:
            break
        if isinstance(op, WalOp):
            pending.append(op)
        else:
            seq, count = op
            if count != len(pending):
                # A commit marker that does not seal exactly the pending
                # frames cannot belong to a consistent batch; treat the
                # whole region from the batch start as torn.
                break
            batches.append(WalBatch(seq, tuple(pending)))
            pending = []
            valid_bytes = _HEADER.size + end
        pos = end
    discarded_in_tail = len(pending)
    return WalScan(
        dimensions=dimensions,
        tag=int(tag),
        batches=tuple(batches),
        valid_bytes=valid_bytes,
        total_bytes=_HEADER.size + len(data),
        discarded_ops=discarded_in_tail,
    )


def _decode_payload(
    payload: bytes, dimensions: int
) -> "Optional[WalOp | Tuple[int, int]]":
    kind = payload[0]
    if kind == _TYPE_INSERT:
        if len(payload) != _INSERT_PREFIX.size + 4 * dimensions:
            return None
        _, descriptor_id = _INSERT_PREFIX.unpack_from(payload, 0)
        vector = np.frombuffer(
            payload, dtype="<f4", count=dimensions, offset=_INSERT_PREFIX.size
        ).astype(np.float32, copy=True)
        return WalOp(OP_INSERT, int(descriptor_id), vector)
    if kind == _TYPE_DELETE:
        if len(payload) != _DELETE_BODY.size:
            return None
        _, descriptor_id = _DELETE_BODY.unpack_from(payload, 0)
        return WalOp(OP_DELETE, int(descriptor_id), None)
    if kind == _TYPE_COMMIT:
        if len(payload) != _COMMIT_BODY.size:
            return None
        _, seq, count = _COMMIT_BODY.unpack_from(payload, 0)
        return (int(seq), int(count))
    return None


def truncate_wal(path: str, scan: WalScan) -> int:
    """Discard a log's uncommitted suffix in place; returns bytes removed.

    This is the one mutation recovery performs on the log itself: cutting
    the file back to the recovery point so subsequent appends continue a
    clean committed prefix.  Committed bytes are never touched.
    """
    torn = scan.torn_bytes
    if torn <= 0:
        return 0
    with open(path, "r+b") as stream:
        stream.truncate(scan.valid_bytes)
        stream.flush()
        os.fsync(stream.fileno())
    return torn
