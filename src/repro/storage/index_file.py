"""The index file: one fixed-size entry per chunk.

Paper section 4.2: "Each entry of the index stores the coordinates of the
centroid of each chunk and the radius of the chunk, as well as its location
in the chunk file.  The order of the entries in the index is identical to
the order of the chunks in the chunk file."

Binary layout
-------------
Header (32 bytes)::

    magic   : 8 bytes  b"EFF2CIDX"
    version : uint32
    dims    : uint32
    n_chunks: uint64
    reserved: 8 bytes

Entry (``8 * d + 8 + 8 + 4 + 4`` bytes each)::

    centroid    : float64 x d
    radius      : float64
    page_offset : uint64
    page_count  : uint32
    n_descriptors : uint32

Version 2 appends one block after the entries::

    centroid_sq_norms : float64 x n_chunks

the precomputed ``|centroid|^2`` terms the expanded-form distance kernel
needs for batched chunk ranking.  The entry layout is unchanged, so a v1
reader's per-query *ranking scan* (centroid + radius + location) covers
exactly the entries region — which is why :func:`index_file_bytes`, the
quantity the disk model charges at query start, deliberately excludes the
norms tail: it is loaded once when the index is opened, not per query.
Version 1 files remain readable; their norms are recomputed on load with
the identical einsum formulation, so the values are bit-equal either way.
"""

from __future__ import annotations

import os
import struct
from typing import BinaryIO, List, Sequence, Union

import numpy as np

from ..core.chunk import ChunkMeta
from .atomic import atomic_output
from .errors import MAX_DIMENSIONS, CorruptFileError

__all__ = [
    "write_index_file",
    "read_index_file",
    "read_index_file_with_norms",
    "centroid_sq_norms",
    "index_file_bytes",
    "MAGIC",
    "VERSION",
]

MAGIC = b"EFF2CIDX"
VERSION = 2
#: Every on-disk version this reader accepts.
SUPPORTED_VERSIONS = (1, 2)
_HEADER = struct.Struct("<8sIIQ8s")
#: Reject headers whose implied payload exceeds this (1 TiB) — guards
#: against corrupted ``n_chunks``/``dims`` fields triggering huge reads.
_MAX_PAYLOAD_BYTES = 1 << 40

PathOrFile = Union[str, os.PathLike, BinaryIO]


def _entry_dtype(dimensions: int) -> np.dtype:
    return np.dtype(
        [
            ("centroid", "<f8", (dimensions,)),
            ("radius", "<f8"),
            ("page_offset", "<u8"),
            ("page_count", "<u4"),
            ("n_descriptors", "<u4"),
        ]
    )


def index_file_bytes(n_chunks: int, dimensions: int) -> int:
    """Size of the per-query ranking scan region (header + entries) — this
    is what the disk model charges for the sequential index read at the
    start of every query.  The v2 norms tail is excluded on purpose: it is
    read once at open time, never per query, so simulated query timings are
    identical for v1 and v2 indexes."""
    return _HEADER.size + n_chunks * _entry_dtype(dimensions).itemsize


def centroid_sq_norms(centroids: np.ndarray) -> np.ndarray:
    """``|centroid|^2`` per chunk (float64), the expanded-form kernel's
    point-norm terms.

    This is the single formulation used everywhere norms are produced —
    at index build, at v1 load, and inside
    :func:`~repro.core.distance.pairwise_squared_distances` — so stored
    and recomputed norms are bit-equal.
    """
    matrix = np.ascontiguousarray(centroids, dtype=np.float64)
    return np.einsum("pd,pd->p", matrix, matrix)


def write_index_file(
    target: PathOrFile, metas: Sequence[ChunkMeta], version: int = VERSION
) -> None:
    """Serialize chunk metadata, preserving chunk order.

    ``version`` selects the on-disk format: 2 (default) appends the
    centroid-norms block; 1 writes the original layout (kept for
    compatibility tests and tooling that must emit the paper's format).
    """
    if not metas:
        raise ValueError("cannot write an empty index file")
    if version not in SUPPORTED_VERSIONS:
        raise ValueError(f"cannot write index file version {version}")
    dimensions = metas[0].centroid.shape[0]
    entries = np.empty(len(metas), dtype=_entry_dtype(dimensions))
    for i, meta in enumerate(metas):
        if meta.chunk_id != i:
            raise ValueError(
                f"index entries must be in chunk order: entry {i} has "
                f"chunk_id {meta.chunk_id}"
            )
        if meta.centroid.shape[0] != dimensions:
            raise ValueError("all centroids must share one dimensionality")
        entries[i]["centroid"] = meta.centroid
        entries[i]["radius"] = meta.radius
        entries[i]["page_offset"] = meta.page_offset
        entries[i]["page_count"] = meta.page_count
        entries[i]["n_descriptors"] = meta.n_descriptors

    header = _HEADER.pack(MAGIC, version, dimensions, len(metas), b"\x00" * 8)
    norms = b""
    if version >= 2:
        norms = (
            centroid_sq_norms(np.stack([m.centroid for m in metas]))
            .astype("<f8", copy=False)
            .tobytes()
        )
    if isinstance(target, (str, os.PathLike)):
        # Path target: publish atomically (write-temp, fsync, rename) so
        # a crash mid-write never leaves a truncated index behind.
        with atomic_output(target) as stream:
            stream.write(header)
            stream.write(entries.tobytes())
            stream.write(norms)
    else:
        target.write(header)
        target.write(entries.tobytes())
        target.write(norms)
        target.flush()


def read_index_file_with_norms(
    source: PathOrFile,
) -> "tuple[List[ChunkMeta], np.ndarray]":
    """Load chunk metadata plus the centroid-norms block, in chunk order.

    A v1 file has no norms block; its norms are recomputed from the
    centroids with the same formulation a v2 writer used, so callers see
    identical values whichever version is on disk.
    """
    owns = isinstance(source, (str, os.PathLike))
    stream: BinaryIO = open(source, "rb") if owns else source  # type: ignore[arg-type]
    try:
        raw_header = stream.read(_HEADER.size)
        if len(raw_header) != _HEADER.size:
            raise CorruptFileError("index file too short for header")
        magic, version, dimensions, n_chunks, _ = _HEADER.unpack(raw_header)
        if magic != MAGIC:
            raise CorruptFileError(f"bad index file magic {magic!r}")
        if version not in SUPPORTED_VERSIONS:
            raise CorruptFileError(f"unsupported index file version {version}")
        # Bound dims before deriving the entry size from it, then bound the
        # implied payload — same discipline as the collection-file reader.
        if not 1 <= dimensions <= MAX_DIMENSIONS:
            raise CorruptFileError(
                f"index file header has implausible dimensions {dimensions} "
                f"(expected 1..{MAX_DIMENSIONS})"
            )
        dtype = _entry_dtype(dimensions)
        if n_chunks * dtype.itemsize > _MAX_PAYLOAD_BYTES:
            raise CorruptFileError(
                f"index file header implies implausible size "
                f"(n_chunks={n_chunks}, dims={dimensions})"
            )
        raw = stream.read(n_chunks * dtype.itemsize)
        if len(raw) != n_chunks * dtype.itemsize:
            raise CorruptFileError("index file truncated")
        entries = np.frombuffer(raw, dtype=dtype)
        metas = [
            ChunkMeta(
                chunk_id=i,
                centroid=entries[i]["centroid"].copy(),
                radius=float(entries[i]["radius"]),
                n_descriptors=int(entries[i]["n_descriptors"]),
                page_offset=int(entries[i]["page_offset"]),
                page_count=int(entries[i]["page_count"]),
            )
            for i in range(n_chunks)
        ]
        if version >= 2:
            raw_norms = stream.read(n_chunks * 8)
            if len(raw_norms) != n_chunks * 8:
                raise CorruptFileError("index file truncated (norms block)")
            norms = np.frombuffer(raw_norms, dtype="<f8").astype(
                np.float64, copy=True
            )
            if not bool(np.all(np.isfinite(norms))) or bool(np.any(norms < 0.0)):
                raise CorruptFileError("index file norms block is corrupt")
        elif n_chunks:
            norms = centroid_sq_norms(np.stack([m.centroid for m in metas]))
        else:
            norms = np.empty(0, dtype=np.float64)
        return metas, norms
    finally:
        if owns:
            stream.close()


def read_index_file(source: PathOrFile) -> List[ChunkMeta]:
    """Load chunk metadata back, in chunk order (any supported version)."""
    metas, _ = read_index_file_with_norms(source)
    return metas
