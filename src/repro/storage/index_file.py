"""The index file: one fixed-size entry per chunk.

Paper section 4.2: "Each entry of the index stores the coordinates of the
centroid of each chunk and the radius of the chunk, as well as its location
in the chunk file.  The order of the entries in the index is identical to
the order of the chunks in the chunk file."

Binary layout
-------------
Header (32 bytes)::

    magic   : 8 bytes  b"EFF2CIDX"
    version : uint32
    dims    : uint32
    n_chunks: uint64
    reserved: 8 bytes

Entry (``8 * d + 8 + 8 + 4 + 4`` bytes each)::

    centroid    : float64 x d
    radius      : float64
    page_offset : uint64
    page_count  : uint32
    n_descriptors : uint32
"""

from __future__ import annotations

import os
import struct
from typing import BinaryIO, List, Sequence, Union

import numpy as np

from ..core.chunk import ChunkMeta
from .atomic import atomic_output
from .errors import MAX_DIMENSIONS, CorruptFileError

__all__ = ["write_index_file", "read_index_file", "index_file_bytes", "MAGIC"]

MAGIC = b"EFF2CIDX"
VERSION = 1
_HEADER = struct.Struct("<8sIIQ8s")
#: Reject headers whose implied payload exceeds this (1 TiB) — guards
#: against corrupted ``n_chunks``/``dims`` fields triggering huge reads.
_MAX_PAYLOAD_BYTES = 1 << 40

PathOrFile = Union[str, os.PathLike, BinaryIO]


def _entry_dtype(dimensions: int) -> np.dtype:
    return np.dtype(
        [
            ("centroid", "<f8", (dimensions,)),
            ("radius", "<f8"),
            ("page_offset", "<u8"),
            ("page_count", "<u4"),
            ("n_descriptors", "<u4"),
        ]
    )


def index_file_bytes(n_chunks: int, dimensions: int) -> int:
    """Total size of an index file — this is what the disk model charges
    for the sequential index read at the start of every query."""
    return _HEADER.size + n_chunks * _entry_dtype(dimensions).itemsize


def write_index_file(target: PathOrFile, metas: Sequence[ChunkMeta]) -> None:
    """Serialize chunk metadata, preserving chunk order."""
    if not metas:
        raise ValueError("cannot write an empty index file")
    dimensions = metas[0].centroid.shape[0]
    entries = np.empty(len(metas), dtype=_entry_dtype(dimensions))
    for i, meta in enumerate(metas):
        if meta.chunk_id != i:
            raise ValueError(
                f"index entries must be in chunk order: entry {i} has "
                f"chunk_id {meta.chunk_id}"
            )
        if meta.centroid.shape[0] != dimensions:
            raise ValueError("all centroids must share one dimensionality")
        entries[i]["centroid"] = meta.centroid
        entries[i]["radius"] = meta.radius
        entries[i]["page_offset"] = meta.page_offset
        entries[i]["page_count"] = meta.page_count
        entries[i]["n_descriptors"] = meta.n_descriptors

    header = _HEADER.pack(MAGIC, VERSION, dimensions, len(metas), b"\x00" * 8)
    if isinstance(target, (str, os.PathLike)):
        # Path target: publish atomically (write-temp, fsync, rename) so
        # a crash mid-write never leaves a truncated index behind.
        with atomic_output(target) as stream:
            stream.write(header)
            stream.write(entries.tobytes())
    else:
        target.write(header)
        target.write(entries.tobytes())
        target.flush()


def read_index_file(source: PathOrFile) -> List[ChunkMeta]:
    """Load chunk metadata back, in chunk order."""
    owns = isinstance(source, (str, os.PathLike))
    stream: BinaryIO = open(source, "rb") if owns else source  # type: ignore[arg-type]
    try:
        raw_header = stream.read(_HEADER.size)
        if len(raw_header) != _HEADER.size:
            raise CorruptFileError("index file too short for header")
        magic, version, dimensions, n_chunks, _ = _HEADER.unpack(raw_header)
        if magic != MAGIC:
            raise CorruptFileError(f"bad index file magic {magic!r}")
        if version != VERSION:
            raise CorruptFileError(f"unsupported index file version {version}")
        # Bound dims before deriving the entry size from it, then bound the
        # implied payload — same discipline as the collection-file reader.
        if not 1 <= dimensions <= MAX_DIMENSIONS:
            raise CorruptFileError(
                f"index file header has implausible dimensions {dimensions} "
                f"(expected 1..{MAX_DIMENSIONS})"
            )
        dtype = _entry_dtype(dimensions)
        if n_chunks * dtype.itemsize > _MAX_PAYLOAD_BYTES:
            raise CorruptFileError(
                f"index file header implies implausible size "
                f"(n_chunks={n_chunks}, dims={dimensions})"
            )
        raw = stream.read(n_chunks * dtype.itemsize)
        if len(raw) != n_chunks * dtype.itemsize:
            raise CorruptFileError("index file truncated")
        entries = np.frombuffer(raw, dtype=dtype)
        return [
            ChunkMeta(
                chunk_id=i,
                centroid=entries[i]["centroid"].copy(),
                radius=float(entries[i]["radius"]),
                n_descriptors=int(entries[i]["n_descriptors"]),
                page_offset=int(entries[i]["page_offset"]),
                page_count=int(entries[i]["page_count"]),
            )
            for i in range(n_chunks)
        ]
    finally:
        if owns:
            stream.close()
