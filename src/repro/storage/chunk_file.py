"""The chunk file: descriptors grouped by chunk, padded to full pages.

Paper section 4.2: "The chunk file holds the descriptors computed over the
whole image collection but these descriptors are grouped according to the
specific chunk-forming strategy.  All the descriptors belonging to one
chunk are stored together on disk and the chunks are stored sequentially.
The chunks are padded to occupy full disk pages."

The writer streams chunks in order, returning the page extent of each so
the caller can fill in :class:`~repro.core.chunk.ChunkMeta`.  The reader
fetches one chunk's pages and decodes the records, exactly the access the
search algorithm performs per ranked chunk.

Format versions
---------------
*v1* (legacy): a headerless sequence of page-padded chunks.  Still fully
readable; corruption inside a chunk's payload is *undetectable* in v1
(only truncation is caught).

*v2* (current): one header page, the same page-padded chunk sequence,
then a CRC32 table::

    page 0          : header  (magic "EFF2CHNK", version, dims,
                               page_bytes, n_chunks, table_page)
    pages 1..N      : chunk payloads, page-padded (extents stay *logical*
                      — ``ChunkExtent.page_offset`` is relative to the
                      data region, so v1 and v2 extents are identical and
                      the simulated I/O charges do not change)
    page table_page : CRC table (magic "EFF2CCRC", count, then one
                      ``(page_offset, crc32)`` entry per chunk)

The header is written with ``table_page = 0`` and patched on close, so a
crash mid-write leaves a file the reader rejects as unfinalised instead
of one that silently decodes garbage.  Writers that own their path write
to ``<path>.tmp`` and publish with an atomic fsync + rename; an aborted
or failed write never replaces an existing good file.
"""

from __future__ import annotations

import io
import os
import struct
import zlib
from typing import BinaryIO, Dict, List, Optional, Tuple, Union

import numpy as np

from .errors import MAX_DIMENSIONS, ChecksumError, CorruptFileError
from .pages import PageGeometry
from .records import RecordCodec

__all__ = [
    "ChunkFileWriter",
    "ChunkFileReader",
    "ChunkExtent",
    "CHUNK_MAGIC",
    "CHUNK_VERSION",
]

PathOrFile = Union[str, os.PathLike, BinaryIO]

CHUNK_MAGIC = b"EFF2CHNK"
TABLE_MAGIC = b"EFF2CCRC"
#: Current chunk-file format version (v1 is the legacy headerless form).
CHUNK_VERSION = 2

#: Header: magic, version, dims, page_bytes, reserved, n_chunks, table_page.
_HEADER = struct.Struct("<8sIIIIQQ")
#: CRC table header: magic, entry count.
_TABLE_HEADER = struct.Struct("<8sQ")
#: CRC table entry: logical page offset, CRC32 of the chunk payload.
_TABLE_ENTRY = struct.Struct("<QI")
#: Reject headers whose implied table exceeds this (1 TiB) — guards
#: against corrupted ``n_chunks`` fields triggering huge reads.
_MAX_PAYLOAD_BYTES = 1 << 40


class ChunkExtent(Tuple[int, int, int]):
    """``(page_offset, page_count, n_descriptors)`` for one written chunk.

    Page offsets are *logical* (relative to the start of the data
    region), identical across format versions.
    """

    __slots__ = ()

    def __new__(cls, page_offset: int, page_count: int, n_descriptors: int):
        return tuple.__new__(cls, (int(page_offset), int(page_count), int(n_descriptors)))

    @property
    def page_offset(self) -> int:
        return self[0]

    @property
    def page_count(self) -> int:
        return self[1]

    @property
    def n_descriptors(self) -> int:
        return self[2]


class ChunkFileWriter:
    """Sequentially writes chunks, padding each to a page boundary.

    Writing to a path is crash-safe: bytes land in ``<path>.tmp`` and the
    final name appears only after a flush + fsync + atomic rename in
    :meth:`close`.  A writer whose previous write raised is *poisoned* —
    further ``write_chunk`` calls are rejected and closing discards the
    temporary file — so a partially written chunk file can never
    masquerade as a complete one.
    """

    def __init__(
        self,
        target: PathOrFile,
        dimensions: int,
        geometry: Optional[PageGeometry] = None,
        version: int = CHUNK_VERSION,
    ):
        if version not in (1, CHUNK_VERSION):
            raise ValueError(f"unsupported chunk file version {version}")
        self._geometry = geometry or PageGeometry()
        self._codec = RecordCodec(dimensions)
        self._version = version
        self._owns_file = isinstance(target, (str, os.PathLike))
        if self._owns_file:
            self._final_path = os.fspath(target)  # type: ignore[arg-type]
            self._tmp_path: Optional[str] = self._final_path + ".tmp"
            self._file: BinaryIO = open(self._tmp_path, "wb")
        else:
            self._final_path = ""
            self._tmp_path = None
            self._file = target  # type: ignore[assignment]
        self._base = 0 if self._owns_file else self._file.tell()
        self._next_page = 0
        self._closed = False
        self._failed = False
        self._crcs: List[Tuple[int, int]] = []
        self.extents: List[ChunkExtent] = []
        if self._version >= 2:
            try:
                self._write_header(n_chunks=0, table_page=0)
            except Exception:
                self._failed = True
                self.close()
                raise

    @property
    def geometry(self) -> PageGeometry:
        return self._geometry

    @property
    def version(self) -> int:
        return self._version

    def _write_header(self, n_chunks: int, table_page: int) -> None:
        header = _HEADER.pack(
            CHUNK_MAGIC,
            self._version,
            self._codec.dimensions,
            self._geometry.page_bytes,
            0,
            n_chunks,
            table_page,
        )
        self._file.write(header)
        self._file.write(b"\x00" * (self._geometry.page_bytes - len(header)))

    @property
    def _data_start_page(self) -> int:
        """Physical page where the data region begins (0 in v1, 1 in v2)."""
        return 0 if self._version == 1 else 1

    def write_chunk(self, ids: np.ndarray, vectors: np.ndarray) -> ChunkExtent:
        """Append one chunk; returns its (logical) page extent."""
        if self._closed:
            raise ValueError("writer is closed")
        if self._failed:
            raise ValueError(
                "writer is poisoned: a previous write failed, the file is "
                "incomplete and will be discarded on close"
            )
        try:
            payload = self._codec.encode(ids, vectors)
            padding = self._geometry.padding_for(len(payload))
            self._file.write(payload)
            if padding:
                self._file.write(b"\x00" * padding)
        except Exception:
            self._failed = True
            raise
        pages = self._geometry.pages_for(len(payload))
        extent = ChunkExtent(self._next_page, pages, int(np.asarray(ids).shape[0]))
        if self._version >= 2:
            self._crcs.append((self._next_page, zlib.crc32(payload)))
        self._next_page += pages
        self.extents.append(extent)
        return extent

    def _write_table(self) -> int:
        """Append the CRC table; returns its physical page number."""
        table_page = self._data_start_page + self._next_page
        self._file.write(_TABLE_HEADER.pack(TABLE_MAGIC, len(self._crcs)))
        for page_offset, crc in self._crcs:
            self._file.write(_TABLE_ENTRY.pack(page_offset, crc))
        return table_page

    def _discard(self) -> None:
        """Close and remove the temporary file after a failure."""
        try:
            if self._owns_file:
                self._file.close()
        finally:
            if self._tmp_path is not None and os.path.exists(self._tmp_path):
                os.unlink(self._tmp_path)

    def close(self) -> None:
        """Finalise the file (CRC table + header patch), fsync owned
        files, and atomically publish path targets.

        A poisoned writer (or one whose ``with`` block raised) discards
        its temporary file instead: the target path is left untouched.
        """
        if self._closed:
            return
        self._closed = True
        if self._failed:
            self._discard()
            return
        try:
            if self._version >= 2:
                table_page = self._write_table()
                self._file.seek(self._base)
                self._write_header(len(self._crcs), table_page)
            self._file.flush()
            if self._owns_file:
                os.fsync(self._file.fileno())
                self._file.close()
                assert self._tmp_path is not None
                os.replace(self._tmp_path, self._final_path)
        except Exception:
            self._failed = True
            self._discard()
            raise

    def __enter__(self) -> "ChunkFileWriter":
        return self

    def __exit__(self, exc_type, *exc_info) -> None:
        if exc_type is not None:
            # The with-block failed: never publish a partial file.
            self._failed = True
        self.close()


class ChunkFileReader:
    """Random-access reads of whole chunks from a chunk file.

    The format version is auto-detected from the leading magic; v1
    (headerless) files remain readable but carry no checksums, so only
    truncation is detectable there.  For v2 files every chunk payload is
    verified against its stored CRC32 (disable with
    ``verify_checksums=False`` to measure raw read cost).
    """

    def __init__(
        self,
        source: PathOrFile,
        dimensions: int,
        geometry: Optional[PageGeometry] = None,
        verify_checksums: bool = True,
    ):
        self._geometry = geometry or PageGeometry()
        self._codec = RecordCodec(dimensions)
        self._owns_file = isinstance(source, (str, os.PathLike))
        self._file: BinaryIO = (
            open(source, "rb") if self._owns_file else source  # type: ignore[arg-type]
        )
        self.verify_checksums = bool(verify_checksums)
        self._crcs: Optional[Dict[int, int]] = None
        try:
            self._base = self._file.tell()
            self._version = self._detect_version()
        except Exception:
            self.close()
            raise

    def _detect_version(self) -> int:
        lead = self._file.read(len(CHUNK_MAGIC))
        if lead != CHUNK_MAGIC:
            # Legacy headerless file: data starts at the base offset.
            self._file.seek(self._base)
            self._data_start_page = 0
            return 1
        rest = self._file.read(_HEADER.size - len(CHUNK_MAGIC))
        if len(rest) != _HEADER.size - len(CHUNK_MAGIC):
            raise CorruptFileError("chunk file too short for its header")
        _, version, dims, page_bytes, _, n_chunks, table_page = _HEADER.unpack(
            CHUNK_MAGIC + rest
        )
        if version != CHUNK_VERSION:
            raise CorruptFileError(f"unsupported chunk file version {version}")
        if not 1 <= dims <= MAX_DIMENSIONS:
            raise CorruptFileError(
                f"chunk file header has implausible dimensions {dims} "
                f"(expected 1..{MAX_DIMENSIONS})"
            )
        if dims != self._codec.dimensions:
            raise CorruptFileError(
                f"chunk file holds {dims}-d records, reader expects "
                f"{self._codec.dimensions}-d"
            )
        if page_bytes != self._geometry.page_bytes:
            raise CorruptFileError(
                f"chunk file was written with {page_bytes}-byte pages, "
                f"reader geometry uses {self._geometry.page_bytes}"
            )
        if table_page == 0:
            raise CorruptFileError(
                "chunk file was not finalized (missing checksum table); "
                "the writer likely crashed mid-write"
            )
        if n_chunks * _TABLE_ENTRY.size > _MAX_PAYLOAD_BYTES:
            raise CorruptFileError(
                f"chunk file header implies implausible size (n_chunks={n_chunks})"
            )
        self._data_start_page = 1
        self._load_crc_table(int(table_page), int(n_chunks))
        return CHUNK_VERSION

    def _load_crc_table(self, table_page: int, n_chunks: int) -> None:
        self._file.seek(self._base + self._geometry.byte_offset(table_page))
        raw = self._file.read(_TABLE_HEADER.size)
        if len(raw) != _TABLE_HEADER.size:
            raise CorruptFileError("chunk file checksum table truncated")
        magic, count = _TABLE_HEADER.unpack(raw)
        if magic != TABLE_MAGIC:
            raise CorruptFileError(
                f"bad chunk file checksum table magic {magic!r}"
            )
        if count != n_chunks:
            raise CorruptFileError(
                f"chunk file header claims {n_chunks} chunks but the "
                f"checksum table holds {count}"
            )
        raw = self._file.read(count * _TABLE_ENTRY.size)
        if len(raw) != count * _TABLE_ENTRY.size:
            raise CorruptFileError("chunk file checksum table truncated")
        crcs: Dict[int, int] = {}
        for i in range(count):
            page_offset, crc = _TABLE_ENTRY.unpack_from(raw, i * _TABLE_ENTRY.size)
            crcs[page_offset] = crc
        self._crcs = crcs

    @property
    def geometry(self) -> PageGeometry:
        return self._geometry

    @property
    def version(self) -> int:
        """Detected format version (1 legacy, 2 checksummed)."""
        return self._version

    @property
    def has_checksums(self) -> bool:
        """True when the file carries a per-chunk CRC32 table (v2)."""
        return self._crcs is not None

    def read_chunk(self, extent: ChunkExtent) -> Tuple[np.ndarray, np.ndarray]:
        """Read one chunk's pages; returns ``(ids, vectors)``.

        Only the leading ``n_descriptors`` records are decoded — the page
        padding is read (it is transferred from disk either way) but
        discarded.  On checksummed files the payload is verified first;
        a mismatch raises :class:`~repro.storage.errors.ChecksumError`.
        """
        self._file.seek(
            self._base
            + self._geometry.byte_offset(self._data_start_page + extent.page_offset)
        )
        raw = self._file.read(extent.page_count * self._geometry.page_bytes)
        needed = extent.n_descriptors * self._codec.record_bytes
        if len(raw) < needed:
            raise CorruptFileError(
                f"chunk file truncated: wanted {needed} bytes at page "
                f"{extent.page_offset}, got {len(raw)}"
            )
        payload = raw[:needed]
        if self._crcs is not None and self.verify_checksums:
            stored = self._crcs.get(extent.page_offset)
            if stored is None:
                raise CorruptFileError(
                    f"no checksum entry for chunk at page {extent.page_offset}"
                )
            actual = zlib.crc32(payload)
            if actual != stored:
                raise ChecksumError(
                    f"chunk at page {extent.page_offset} failed its CRC32 "
                    f"check (stored {stored:#010x}, computed {actual:#010x})"
                )
        return self._codec.decode(payload)

    def close(self) -> None:
        if self._owns_file:
            self._file.close()

    def __enter__(self) -> "ChunkFileReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
