"""The chunk file: descriptors grouped by chunk, padded to full pages.

Paper section 4.2: "The chunk file holds the descriptors computed over the
whole image collection but these descriptors are grouped according to the
specific chunk-forming strategy.  All the descriptors belonging to one
chunk are stored together on disk and the chunks are stored sequentially.
The chunks are padded to occupy full disk pages."

The writer streams chunks in order, returning the page extent of each so
the caller can fill in :class:`~repro.core.chunk.ChunkMeta`.  The reader
fetches one chunk's pages and decodes the records, exactly the access the
search algorithm performs per ranked chunk.
"""

from __future__ import annotations

import io
import os
from typing import BinaryIO, List, Optional, Tuple, Union

import numpy as np

from .errors import CorruptFileError
from .pages import PageGeometry
from .records import RecordCodec

__all__ = ["ChunkFileWriter", "ChunkFileReader", "ChunkExtent"]

PathOrFile = Union[str, os.PathLike, BinaryIO]


class ChunkExtent(Tuple[int, int, int]):
    """``(page_offset, page_count, n_descriptors)`` for one written chunk."""

    __slots__ = ()

    def __new__(cls, page_offset: int, page_count: int, n_descriptors: int):
        return tuple.__new__(cls, (int(page_offset), int(page_count), int(n_descriptors)))

    @property
    def page_offset(self) -> int:
        return self[0]

    @property
    def page_count(self) -> int:
        return self[1]

    @property
    def n_descriptors(self) -> int:
        return self[2]


class ChunkFileWriter:
    """Sequentially writes chunks, padding each to a page boundary."""

    def __init__(
        self,
        target: PathOrFile,
        dimensions: int,
        geometry: Optional[PageGeometry] = None,
    ):
        self._geometry = geometry or PageGeometry()
        self._codec = RecordCodec(dimensions)
        self._owns_file = isinstance(target, (str, os.PathLike))
        self._file: BinaryIO = (
            open(target, "wb") if self._owns_file else target  # type: ignore[arg-type]
        )
        self._next_page = 0
        self._closed = False
        self.extents: List[ChunkExtent] = []

    @property
    def geometry(self) -> PageGeometry:
        return self._geometry

    def write_chunk(self, ids: np.ndarray, vectors: np.ndarray) -> ChunkExtent:
        """Append one chunk; returns its page extent in the file."""
        if self._closed:
            raise ValueError("writer is closed")
        payload = self._codec.encode(ids, vectors)
        padding = self._geometry.padding_for(len(payload))
        self._file.write(payload)
        if padding:
            self._file.write(b"\x00" * padding)
        pages = self._geometry.pages_for(len(payload))
        extent = ChunkExtent(self._next_page, pages, int(np.asarray(ids).shape[0]))
        self._next_page += pages
        self.extents.append(extent)
        return extent

    def close(self) -> None:
        if self._closed:
            return
        self._file.flush()
        if self._owns_file:
            self._file.close()
        self._closed = True

    def __enter__(self) -> "ChunkFileWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ChunkFileReader:
    """Random-access reads of whole chunks from a chunk file."""

    def __init__(
        self,
        source: PathOrFile,
        dimensions: int,
        geometry: Optional[PageGeometry] = None,
    ):
        self._geometry = geometry or PageGeometry()
        self._codec = RecordCodec(dimensions)
        self._owns_file = isinstance(source, (str, os.PathLike))
        self._file: BinaryIO = (
            open(source, "rb") if self._owns_file else source  # type: ignore[arg-type]
        )

    @property
    def geometry(self) -> PageGeometry:
        return self._geometry

    def read_chunk(self, extent: ChunkExtent) -> Tuple[np.ndarray, np.ndarray]:
        """Read one chunk's pages; returns ``(ids, vectors)``.

        Only the leading ``n_descriptors`` records are decoded — the page
        padding is read (it is transferred from disk either way) but
        discarded.
        """
        self._file.seek(self._geometry.byte_offset(extent.page_offset))
        raw = self._file.read(extent.page_count * self._geometry.page_bytes)
        needed = extent.n_descriptors * self._codec.record_bytes
        if len(raw) < needed:
            raise CorruptFileError(
                f"chunk file truncated: wanted {needed} bytes at page "
                f"{extent.page_offset}, got {len(raw)}"
            )
        return self._codec.decode(raw[:needed])

    def close(self) -> None:
        if self._owns_file:
            self._file.close()

    def __enter__(self) -> "ChunkFileReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
