"""Crash-safe file publication: write-temp, fsync, atomic rename.

All on-disk formats in this package share the same durability contract:
a writer must never leave a half-written file under the final name.  The
:func:`atomic_output` context manager implements it once — bytes land in
``<path>.tmp``; on clean exit the file is flushed, fsynced and renamed
over the target with :func:`os.replace` (atomic on POSIX); on error the
temporary is unlinked and any pre-existing file at the target survives
untouched.
"""

from __future__ import annotations

import contextlib
import os
from typing import BinaryIO, Iterator, Union

__all__ = ["atomic_output"]

PathLike = Union[str, os.PathLike]


@contextlib.contextmanager
def atomic_output(path: PathLike) -> Iterator[BinaryIO]:
    """Yield a binary stream that atomically replaces ``path`` on success."""
    final_path = os.fspath(path)
    tmp_path = final_path + ".tmp"
    stream = open(tmp_path, "wb")
    try:
        yield stream
        stream.flush()
        os.fsync(stream.fileno())
        stream.close()
        os.replace(tmp_path, final_path)
    except BaseException:
        stream.close()
        with contextlib.suppress(FileNotFoundError):
            os.unlink(tmp_path)
        raise
