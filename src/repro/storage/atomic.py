"""Crash-safe file publication: write-temp, fsync, atomic rename.

All on-disk formats in this package share the same durability contract:
a writer must never leave a half-written file under the final name.  The
:func:`atomic_output` context manager implements it once — bytes land in
``<path>.tmp``; on clean exit the file is flushed, fsynced and renamed
over the target with :func:`os.replace` (atomic on POSIX); on error the
temporary is unlinked and any pre-existing file at the target survives
untouched.
"""

from __future__ import annotations

import contextlib
import os
from typing import BinaryIO, Iterator, Union

__all__ = ["atomic_output", "fsync_directory"]

PathLike = Union[str, os.PathLike]


@contextlib.contextmanager
def atomic_output(path: PathLike) -> Iterator[BinaryIO]:
    """Yield a binary stream that atomically replaces ``path`` on success."""
    final_path = os.fspath(path)
    tmp_path = final_path + ".tmp"
    stream = open(tmp_path, "wb")
    try:
        yield stream
        stream.flush()
        os.fsync(stream.fileno())
        stream.close()
        os.replace(tmp_path, final_path)
    except BaseException:
        stream.close()
        with contextlib.suppress(FileNotFoundError):
            os.unlink(tmp_path)
        raise


def fsync_directory(path: PathLike) -> None:
    """Fsync a directory so a just-renamed entry survives a power cut.

    ``os.replace`` makes the rename atomic but not necessarily durable —
    the directory entry itself must reach the disk.  Best effort: some
    platforms/filesystems refuse to fsync a directory handle, which is
    tolerated (the rename is still atomic, merely not yet durable).
    """
    try:
        fd = os.open(os.fspath(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)
