"""Disk-page arithmetic.

The paper's chunk file pads every chunk "to occupy full disk pages"
(section 4.2) so that each chunk read is a whole number of page transfers.
The simulated disk model charges I/O per page, so page geometry is shared
between the storage layer and :mod:`repro.simio`.
"""

from __future__ import annotations

__all__ = ["PageGeometry", "DEFAULT_PAGE_BYTES"]

#: 8 KiB pages — the common unit for mid-2000s database storage managers.
DEFAULT_PAGE_BYTES = 8192


class PageGeometry:
    """Fixed page size plus the padding helpers built on it."""

    def __init__(self, page_bytes: int = DEFAULT_PAGE_BYTES):
        if page_bytes <= 0:
            raise ValueError(f"page size must be positive, got {page_bytes}")
        self.page_bytes = int(page_bytes)

    def pages_for(self, payload_bytes: int) -> int:
        """Number of pages needed to hold ``payload_bytes`` (at least one)."""
        if payload_bytes < 0:
            raise ValueError("payload size cannot be negative")
        if payload_bytes == 0:
            return 1
        return -(-payload_bytes // self.page_bytes)  # ceiling division

    def padded_size(self, payload_bytes: int) -> int:
        """Bytes occupied after padding up to a full page boundary."""
        return self.pages_for(payload_bytes) * self.page_bytes

    def padding_for(self, payload_bytes: int) -> int:
        """Bytes of padding appended after the payload."""
        return self.padded_size(payload_bytes) - payload_bytes

    def byte_offset(self, page_offset: int) -> int:
        """File byte offset of a page number."""
        if page_offset < 0:
            raise ValueError("page offset cannot be negative")
        return page_offset * self.page_bytes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PageGeometry):
            return NotImplemented
        return self.page_bytes == other.page_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PageGeometry(page_bytes={self.page_bytes})"
