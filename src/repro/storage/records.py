"""Descriptor record codec.

The paper stores each descriptor as a 100-byte record: 24 float32
components plus an identifier (section 5.2: "As each descriptor has 24
dimensions, plus an identifier, each descriptor consumes 100 bytes").

We keep the identifier at 4 bytes (int32) to match the 100-byte figure for
24 dimensions; the codec generalizes to other dimensionalities with record
size ``4 * d + 4``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["RecordCodec"]


class RecordCodec:
    """Encode/decode packed ``[id:int32][components:float32 x d]`` records."""

    def __init__(self, dimensions: int):
        if dimensions <= 0:
            raise ValueError(f"dimensions must be positive, got {dimensions}")
        self.dimensions = int(dimensions)
        self._dtype = np.dtype(
            [("id", "<i4"), ("vector", "<f4", (self.dimensions,))]
        )

    @property
    def record_bytes(self) -> int:
        """Bytes per record (100 for the paper's 24-d descriptors)."""
        return self._dtype.itemsize

    def encode(self, ids: np.ndarray, vectors: np.ndarray) -> bytes:
        """Pack parallel id/vector arrays into a record buffer."""
        ids = np.asarray(ids)
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.ndim != 2 or vectors.shape[1] != self.dimensions:
            raise ValueError(
                f"expected (n, {self.dimensions}) vectors, got shape {vectors.shape}"
            )
        if ids.shape != (vectors.shape[0],):
            raise ValueError("ids and vectors must be parallel arrays")
        if ids.size and (ids.max() > np.iinfo(np.int32).max or ids.min() < np.iinfo(np.int32).min):
            raise ValueError("descriptor id does not fit the on-disk int32 field")
        records = np.empty(vectors.shape[0], dtype=self._dtype)
        records["id"] = ids.astype(np.int32)
        records["vector"] = vectors
        return records.tobytes()

    def decode(self, buffer: bytes) -> Tuple[np.ndarray, np.ndarray]:
        """Unpack a record buffer into ``(ids int64, vectors float32)``."""
        if len(buffer) % self.record_bytes != 0:
            raise ValueError(
                f"buffer of {len(buffer)} bytes is not a whole number of "
                f"{self.record_bytes}-byte records"
            )
        records = np.frombuffer(buffer, dtype=self._dtype)
        return records["id"].astype(np.int64), records["vector"].copy()
