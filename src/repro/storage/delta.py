"""Per-chunk delta segments: tombstone bitmap over a base chunk + appends.

The streaming index checkpoints a *dirty* chunk (one mutated since the
last checkpoint) not by rewriting the whole base generation but by
publishing a small segment file that expresses the chunk's current
contents relative to it::

    header : magic "EFF2DSEG", version u32, dims u32,
             base_ref i32 (-1 = no base chunk), base_rows u32,
             n_appended u32, crc32 u32
    bitmap : ceil(base_rows / 8) bytes — bit set = base row still live
    records: n_appended descriptor records, encoded with the shared
             record codec from :mod:`repro.storage.records`

A chunk's logical contents are reconstructed as the live base rows *in
base order* followed by the appended records *in insertion order* —
exactly the order the in-memory maintainer holds them, which is what
makes recovered centroids bit-identical to an uncrashed process
(``numpy.mean`` over float64 depends on row order).

Segments are published through :func:`repro.storage.atomic.atomic_output`
(write-temp, fsync, rename), so a crash mid-checkpoint leaves the
previous manifest's segments intact and a half-written segment never
becomes visible under its final name.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import NamedTuple, Optional

import numpy as np

from .atomic import atomic_output
from .errors import MAX_DIMENSIONS, ChecksumError, CorruptFileError
from .records import RecordCodec

__all__ = [
    "DELTA_MAGIC",
    "DELTA_VERSION",
    "DeltaSegment",
    "write_delta_segment",
    "read_delta_segment",
]

DELTA_MAGIC = b"EFF2DSEG"
DELTA_VERSION = 1

_HEADER = struct.Struct("<8sIIiIII")
#: Reject headers whose implied payload exceeds this (1 TiB).
_MAX_PAYLOAD_BYTES = 1 << 40


class DeltaSegment(NamedTuple):
    """Decoded contents of one delta segment file.

    Attributes
    ----------
    base_ref:
        Chunk id in the base generation this delta applies to, or ``-1``
        for a pure append segment (a chunk born after the base build).
    live:
        Boolean mask over the base chunk's rows (empty for ``base_ref ==
        -1``); True rows are still members.
    ids:
        Appended descriptor ids (int64).
    vectors:
        Appended descriptor vectors (float32, ``(n_appended, dims)``).
    """

    base_ref: int
    live: np.ndarray
    ids: np.ndarray
    vectors: np.ndarray


def write_delta_segment(
    path: str,
    dimensions: int,
    base_ref: int,
    live: Optional[np.ndarray],
    ids: np.ndarray,
    vectors: np.ndarray,
) -> int:
    """Atomically publish one delta segment; returns bytes written.

    ``live`` is the tombstone bitmap source: a boolean mask over the base
    chunk's rows (required when ``base_ref >= 0``, must be ``None`` or
    empty otherwise).  ``ids``/``vectors`` are the appended records (may
    be empty when the delta only tombstones).
    """
    codec = RecordCodec(dimensions)
    base_ref = int(base_ref)
    if base_ref >= 0:
        if live is None:
            raise ValueError("a based delta segment needs a liveness mask")
        mask = np.asarray(live, dtype=bool).reshape(-1)
    else:
        if live is not None and np.asarray(live).size:
            raise ValueError("a baseless delta segment cannot carry a mask")
        mask = np.zeros(0, dtype=bool)
    ids = np.asarray(ids, dtype=np.int64).reshape(-1)
    vectors = np.asarray(vectors, dtype=np.float32)
    if ids.size == 0:
        vectors = vectors.reshape(0, dimensions)
    if vectors.ndim != 2 or vectors.shape != (ids.size, dimensions):
        raise ValueError("appended ids/vectors shape mismatch")
    if base_ref < 0 and ids.size == 0:
        raise ValueError("a delta segment must tombstone or append something")

    bitmap = np.packbits(mask, bitorder="little").tobytes()
    records = codec.encode(ids, vectors) if ids.size else b""
    crc = zlib.crc32(records, zlib.crc32(bitmap))
    header = _HEADER.pack(
        DELTA_MAGIC, DELTA_VERSION, dimensions, base_ref, mask.size, ids.size, crc
    )
    with atomic_output(path) as stream:
        stream.write(header)
        stream.write(bitmap)
        stream.write(records)
    return len(header) + len(bitmap) + len(records)


def read_delta_segment(path: str, dimensions: int) -> DeltaSegment:
    """Read and CRC-verify one delta segment."""
    codec = RecordCodec(dimensions)
    with open(path, "rb") as stream:
        raw = stream.read(_HEADER.size)
        if len(raw) != _HEADER.size:
            raise CorruptFileError(f"delta segment {os.path.basename(path)} truncated")
        magic, version, dims, base_ref, base_rows, n_appended, crc = _HEADER.unpack(raw)
        if magic != DELTA_MAGIC:
            raise CorruptFileError(f"bad delta segment magic {magic!r}")
        if version != DELTA_VERSION:
            raise CorruptFileError(f"unsupported delta segment version {version}")
        if not 1 <= dims <= MAX_DIMENSIONS:
            raise CorruptFileError(
                f"delta segment header has implausible dimensions {dims}"
            )
        if dims != dimensions:
            raise CorruptFileError(
                f"delta segment holds {dims}-d records, reader expects {dimensions}-d"
            )
        bitmap_bytes = (base_rows + 7) // 8
        if bitmap_bytes + n_appended * codec.record_bytes > _MAX_PAYLOAD_BYTES:
            raise CorruptFileError(
                "delta segment header implies implausible size "
                f"(base_rows={base_rows}, n_appended={n_appended})"
            )
        bitmap = stream.read(bitmap_bytes)
        if len(bitmap) != bitmap_bytes:
            raise CorruptFileError("delta segment bitmap truncated")
        records = stream.read(n_appended * codec.record_bytes)
        if len(records) != n_appended * codec.record_bytes:
            raise CorruptFileError("delta segment records truncated")
    actual = zlib.crc32(records, zlib.crc32(bitmap))
    if actual != crc:
        raise ChecksumError(
            f"delta segment {os.path.basename(path)} failed its CRC32 check "
            f"(stored {crc:#010x}, computed {actual:#010x})"
        )
    if base_rows:
        live = np.unpackbits(
            np.frombuffer(bitmap, dtype=np.uint8), bitorder="little"
        )[:base_rows].astype(bool)
    else:
        live = np.zeros(0, dtype=bool)
    if n_appended:
        ids, vectors = codec.decode(records)
    else:
        ids = np.zeros(0, dtype=np.int64)
        vectors = np.zeros((0, dimensions), dtype=np.float32)
    return DeltaSegment(int(base_ref), live, ids, vectors)
