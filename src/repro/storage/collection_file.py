"""The raw descriptor collection file.

Paper section 4.1: "Images belonging to the collection are described
off-line and typically stored sequentially in a single file."  This module
implements that file: a small header followed by the 100-byte descriptor
records (:mod:`repro.storage.records`), with image ids stored as a second
record stream so the image mapping survives round trips.

Layout::

    magic    : 8 bytes  b"EFF2COLL"
    version  : uint32
    dims     : uint32
    count    : uint64
    records  : count x [id:int32][vector:float32 x d]
    imageids : count x int64
"""

from __future__ import annotations

import os
import struct
from typing import BinaryIO, Union

import numpy as np

from ..core.dataset import DescriptorCollection
from .atomic import atomic_output
from .errors import MAX_DIMENSIONS, CorruptFileError
from .records import RecordCodec

__all__ = ["write_collection_file", "read_collection_file", "COLLECTION_MAGIC"]

COLLECTION_MAGIC = b"EFF2COLL"
_VERSION = 1
_HEADER = struct.Struct("<8sIIQ")
#: Reject headers whose implied payload exceeds this (1 TiB) — guards
#: against corrupted ``count`` fields triggering huge reads/allocations.
_MAX_PAYLOAD_BYTES = 1 << 40

PathOrFile = Union[str, os.PathLike, BinaryIO]


def write_collection_file(target: PathOrFile, collection: DescriptorCollection) -> None:
    """Serialize a collection to the sequential single-file format."""
    codec = RecordCodec(collection.dimensions)
    header = _HEADER.pack(
        COLLECTION_MAGIC, _VERSION, collection.dimensions, len(collection)
    )
    if isinstance(target, (str, os.PathLike)):
        # Path target: publish atomically (write-temp, fsync, rename) so
        # a crash mid-write never leaves a truncated collection behind.
        with atomic_output(target) as stream:
            stream.write(header)
            stream.write(codec.encode(collection.ids, collection.vectors))
            stream.write(
                np.ascontiguousarray(collection.image_ids, dtype="<i8").tobytes()
            )
    else:
        target.write(header)
        target.write(codec.encode(collection.ids, collection.vectors))
        target.write(
            np.ascontiguousarray(collection.image_ids, dtype="<i8").tobytes()
        )
        target.flush()


def read_collection_file(source: PathOrFile) -> DescriptorCollection:
    """Load a collection previously written by :func:`write_collection_file`."""
    owns = isinstance(source, (str, os.PathLike))
    stream: BinaryIO = open(source, "rb") if owns else source  # type: ignore[arg-type]
    try:
        raw_header = stream.read(_HEADER.size)
        if len(raw_header) != _HEADER.size:
            raise CorruptFileError("collection file too short for header")
        magic, version, dimensions, count = _HEADER.unpack(raw_header)
        if magic != COLLECTION_MAGIC:
            raise CorruptFileError(f"bad collection file magic {magic!r}")
        if version != _VERSION:
            raise CorruptFileError(
                f"unsupported collection file version {version}"
            )
        # A corrupted uint32 dims field scales the per-record size, so it
        # must be bounded *before* the count guard below can mean anything
        # (tiny count x enormous record size still allocates gigabytes).
        if not 1 <= dimensions <= MAX_DIMENSIONS:
            raise CorruptFileError(
                f"collection file header has implausible dimensions "
                f"{dimensions} (expected 1..{MAX_DIMENSIONS})"
            )
        codec = RecordCodec(dimensions)
        # A corrupted uint64 count would make stream.read blow up (or try
        # to allocate petabytes) before the truncation check can fire.
        if count * (codec.record_bytes + 8) > _MAX_PAYLOAD_BYTES:
            raise CorruptFileError(
                f"collection file header implies implausible size "
                f"(count={count}, dims={dimensions})"
            )
        payload = stream.read(count * codec.record_bytes)
        if len(payload) != count * codec.record_bytes:
            raise CorruptFileError("collection file truncated (records)")
        ids, vectors = codec.decode(payload)
        raw_images = stream.read(count * 8)
        if len(raw_images) != count * 8:
            raise CorruptFileError("collection file truncated (image ids)")
        image_ids = np.frombuffer(raw_images, dtype="<i8").astype(np.int64)
        return DescriptorCollection(vectors=vectors, ids=ids, image_ids=image_ids)
    finally:
        if owns:
            stream.close()
