"""Synthetic local-descriptor collection generator.

The paper's collection — 5M 24-d local descriptors from 52k real images —
is not redistributable, so experiments run on a generative stand-in that
preserves the properties the paper's results depend on:

* **Local-descriptor structure**: each image contributes a few hundred
  descriptors (section 4.1), drawn from a handful of recurring "visual
  patterns" (dense Gaussian blobs in descriptor space).  Recurring patterns
  across images are what make dataset queries find near-duplicates.
* **Heavy-tailed pattern popularity**: a few patterns recur in a large
  share of images.  These produce the enormous natural clusters BAG finds
  (Figure 1: largest chunks of 0.5-1M descriptors) while most patterns
  stay small.
* **Background clutter**: a fraction of descriptors is uniform noise —
  textureless or unique image regions.  These are the descriptors BAG ends
  up discarding as outliers (Table 1: 8-12 %).

The generator is fully seeded; identical configs produce identical
collections on every platform.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np

from ..core.dataset import DEFAULT_DIMENSIONS, DescriptorCollection

__all__ = ["SyntheticImageConfig", "generate_collection"]


@dataclasses.dataclass(frozen=True)
class SyntheticImageConfig:
    """Parameters of the synthetic image-descriptor model.

    Attributes
    ----------
    n_images:
        Number of images to simulate.
    mean_descriptors_per_image:
        Poisson mean of descriptors per image ("in general, there are few
        hundreds of descriptors computed on each image"); small scales use
        smaller means to keep collections tractable.
    n_patterns:
        Number of recurring visual patterns (mixture components).
    pattern_popularity_exponent:
        Zipf exponent of pattern popularity; higher = heavier head and
        bigger natural clusters.
    patterns_per_image:
        How many distinct patterns an image draws from.
    pattern_std:
        Within-pattern Gaussian spread, relative to the unit box.
    pattern_scale_range:
        Log10 range of the hierarchical offsets between a pattern center
        and its parent; wider/lower ranges give denser multi-scale
        structure (patterns that nearly overlap through patterns a unit
        apart).
    clutter_fraction:
        Fraction of descriptors that are uniform background clutter
        (textureless or unique regions far from every pattern).
    halo_fraction:
        Fraction of descriptors that are *halo* clutter: displaced from a
        random pattern center by a log-uniform offset.  Halo descriptors
        sit at a continuum of distances from dense regions, so
        agglomerative chunkers absorb them progressively rather than all
        at once — mirroring the long tail of noisy-but-not-random
        descriptors in real image collections.
    dimensions:
        Descriptor dimensionality (24 in the paper).
    seed:
        Master seed.
    """

    n_images: int = 500
    mean_descriptors_per_image: int = 50
    n_patterns: int = 120
    pattern_popularity_exponent: float = 1.1
    patterns_per_image: int = 4
    pattern_std: float = 0.02
    pattern_scale_range: Tuple[float, float] = (-0.8, 0.0)
    clutter_fraction: float = 0.04
    halo_fraction: float = 0.08
    dimensions: int = DEFAULT_DIMENSIONS
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_images < 1 or self.mean_descriptors_per_image < 1:
            raise ValueError("need at least one image and one descriptor per image")
        if self.n_patterns < 1 or self.patterns_per_image < 1:
            raise ValueError("need at least one pattern")
        if not 0.0 <= self.clutter_fraction < 1.0:
            raise ValueError("clutter_fraction must be in [0, 1)")
        if not 0.0 <= self.halo_fraction < 1.0:
            raise ValueError("halo_fraction must be in [0, 1)")
        if self.clutter_fraction + self.halo_fraction >= 1.0:
            raise ValueError("clutter + halo fractions must stay below 1")
        if self.pattern_std <= 0:
            raise ValueError("pattern_std must be positive")
        if len(self.pattern_scale_range) != 2 or (
            self.pattern_scale_range[0] > self.pattern_scale_range[1]
        ):
            raise ValueError("pattern_scale_range must be an ascending (lo, hi)")
        if self.dimensions < 1:
            raise ValueError("dimensions must be positive")


def _pattern_popularities(config: SyntheticImageConfig, rng) -> np.ndarray:
    """Zipf-like popularity over patterns, normalized to sum to one.

    The popularity ranking is permuted relative to pattern index so that
    popularity is independent of a pattern's position in the center
    hierarchy (otherwise the hierarchy root would always be the most
    popular pattern and a single runaway density mode would form).
    """
    ranks = np.arange(1, config.n_patterns + 1, dtype=np.float64)
    weights = ranks ** (-config.pattern_popularity_exponent)
    weights = weights / weights.sum()
    return rng.permutation(weights)


def _pattern_centers(config: SyntheticImageConfig, rng) -> np.ndarray:
    """Multi-scale pattern centers.

    Real local descriptors live on a structured manifold: inter-pattern
    distances span orders of magnitude rather than concentrating around the
    single typical distance of i.i.d. uniform points in 24-d.  Centers are
    therefore grown hierarchically — most patterns perturb an earlier
    pattern at a log-uniform scale — which gives agglomerative processes
    like BAG a continuum of merge scales instead of one cliff.
    """
    d = config.dimensions
    centers = np.empty((config.n_patterns, d))
    centers[0] = rng.uniform(0.0, 1.0, size=d)
    for i in range(1, config.n_patterns):
        lo, hi = config.pattern_scale_range
        if rng.random() < 0.75:
            parent = centers[rng.integers(i)]
            scale = 10.0 ** rng.uniform(lo, hi)
            offset = rng.standard_normal(d)
            offset *= scale / np.linalg.norm(offset)
            centers[i] = np.clip(parent + offset, 0.0, 1.0)
        else:
            centers[i] = rng.uniform(0.0, 1.0, size=d)
    return centers


def generate_collection(config: SyntheticImageConfig) -> DescriptorCollection:
    """Generate a synthetic descriptor collection per ``config``."""
    rng = np.random.default_rng(config.seed)
    d = config.dimensions

    pattern_centers = _pattern_centers(config, rng)
    # Per-pattern spread varies a little so cluster densities differ.
    pattern_stds = config.pattern_std * rng.uniform(
        0.6, 1.6, size=config.n_patterns
    )
    popularity = _pattern_popularities(config, rng)

    vectors_parts = []
    image_ids_parts = []
    for image in range(config.n_images):
        n_desc = max(1, int(rng.poisson(config.mean_descriptors_per_image)))
        k = min(config.patterns_per_image, config.n_patterns)
        image_patterns = rng.choice(
            config.n_patterns, size=k, replace=False, p=popularity
        )
        # Within the image, popular patterns also dominate descriptor counts.
        local_w = popularity[image_patterns]
        local_w = local_w / local_w.sum()
        chosen = rng.choice(image_patterns, size=n_desc, p=local_w)

        noise = rng.standard_normal((n_desc, d)) * pattern_stds[chosen][:, np.newaxis]
        points = pattern_centers[chosen] + noise

        kind = rng.random(n_desc)
        clutter = kind < config.clutter_fraction
        halo = (~clutter) & (
            kind < config.clutter_fraction + config.halo_fraction
        )
        n_clutter = int(clutter.sum())
        if n_clutter:
            points[clutter] = rng.uniform(0.0, 1.0, size=(n_clutter, d))
        n_halo = int(halo.sum())
        if n_halo:
            # Displace from the descriptor's pattern center by a log-uniform
            # offset in a random direction.
            offsets = 10.0 ** rng.uniform(-1.0, 0.0, size=n_halo)
            directions = rng.standard_normal((n_halo, d))
            directions /= np.linalg.norm(directions, axis=1, keepdims=True)
            points[halo] = pattern_centers[chosen[halo]] + (
                directions * offsets[:, np.newaxis]
            )

        vectors_parts.append(points)
        image_ids_parts.append(np.full(n_desc, image, dtype=np.int64))

    vectors = np.vstack(vectors_parts).astype(np.float32)
    image_ids = np.concatenate(image_ids_parts)
    ids = np.arange(vectors.shape[0], dtype=np.int64)
    return DescriptorCollection(vectors=vectors, ids=ids, image_ids=image_ids)
