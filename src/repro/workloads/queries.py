"""Query workloads (paper section 5.3).

Two workloads model the two retrieval situations:

* **DQ — dataset queries**: "1,000 randomly selected descriptors from the
  descriptor collection", simulating queries with a good match.
* **SQ — space queries**: for each dimension the value range is computed
  after "discarding the top and bottom 5 %", then queries are drawn
  uniformly from the per-dimension ranges — simulating queries with no
  match in the collection.

The paper ran each query once against each chunk index in round-robin
order to defeat buffering; our simulated disk has no buffer cache, so a
simple per-index loop is equivalent, but :func:`round_robin_schedule`
reproduces the interleaved order for wall-clock runs.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from ..core.dataset import DescriptorCollection

__all__ = [
    "Workload",
    "dataset_queries",
    "space_queries",
    "round_robin_schedule",
    "DEFAULT_TRIM_FRACTION",
]

#: The paper discards the top and bottom 5 % per dimension for SQ.
DEFAULT_TRIM_FRACTION = 0.05


@dataclasses.dataclass(frozen=True)
class Workload:
    """A named batch of query descriptors.

    ``source_rows`` maps each query to the collection row it was sampled
    from (DQ only; -1 for generated queries).
    """

    name: str
    queries: np.ndarray
    source_rows: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "queries", np.ascontiguousarray(self.queries, dtype=np.float64)
        )
        object.__setattr__(
            self, "source_rows", np.ascontiguousarray(self.source_rows, dtype=np.int64)
        )
        if self.queries.ndim != 2:
            raise ValueError("queries must be a (n, d) matrix")
        if self.source_rows.shape != (self.queries.shape[0],):
            raise ValueError("source_rows must parallel the queries")

    def __len__(self) -> int:
        return self.queries.shape[0]

    @property
    def dimensions(self) -> int:
        return self.queries.shape[1]

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self.queries)


def dataset_queries(
    collection: DescriptorCollection,
    n_queries: int,
    seed: int = 0,
    name: str = "DQ",
) -> Workload:
    """The DQ workload: descriptors sampled from the collection itself."""
    if n_queries < 1:
        raise ValueError("need at least one query")
    if len(collection) == 0:
        raise ValueError("cannot sample queries from an empty collection")
    rng = np.random.default_rng(seed)
    replace = n_queries > len(collection)
    rows = rng.choice(len(collection), size=n_queries, replace=replace)
    return Workload(
        name=name,
        queries=collection.vectors[rows].astype(np.float64),
        source_rows=rows.astype(np.int64),
    )


def space_queries(
    collection: DescriptorCollection,
    n_queries: int,
    seed: int = 0,
    trim_fraction: float = DEFAULT_TRIM_FRACTION,
    name: str = "SQ",
) -> Workload:
    """The SQ workload: uniform draws from trimmed per-dimension ranges."""
    if n_queries < 1:
        raise ValueError("need at least one query")
    ranges = collection.dimension_ranges(trim_fraction)
    rng = np.random.default_rng(seed)
    queries = rng.uniform(
        ranges[:, 0], ranges[:, 1], size=(n_queries, collection.dimensions)
    )
    return Workload(
        name=name,
        queries=queries,
        source_rows=np.full(n_queries, -1, dtype=np.int64),
    )


def round_robin_schedule(
    n_queries: int, index_names: Sequence[str]
) -> List[Tuple[int, str]]:
    """The paper's measurement order: "Each query in the workload was run
    once to each chunk-index in a round-robin fashion (to eliminate
    buffering effects)."

    Returns ``(query_index, index_name)`` pairs: query 0 against every
    index, then query 1 against every index, and so on.
    """
    if n_queries < 0:
        raise ValueError("query count cannot be negative")
    if not index_names:
        raise ValueError("need at least one index")
    return [(q, name) for q in range(n_queries) for name in index_names]
