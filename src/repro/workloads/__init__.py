"""Workload substrate: synthetic collections and query batches.

:mod:`~repro.workloads.synthetic` generates image-descriptor collections
with the density structure the paper's dataset exhibits (recurring visual
patterns with heavy-tailed popularity plus background clutter);
:mod:`~repro.workloads.queries` builds the paper's DQ (dataset-query) and
SQ (space-query) workloads over any collection.
"""

from .arrivals import ArrivalSchedule, poisson_arrival_times
from .queries import (
    DEFAULT_TRIM_FRACTION,
    Workload,
    dataset_queries,
    round_robin_schedule,
    space_queries,
)
from .synthetic import SyntheticImageConfig, generate_collection

__all__ = [
    "ArrivalSchedule",
    "poisson_arrival_times",
    "DEFAULT_TRIM_FRACTION",
    "Workload",
    "dataset_queries",
    "round_robin_schedule",
    "space_queries",
    "SyntheticImageConfig",
    "generate_collection",
]
