"""Open-loop arrival processes for simulated traffic.

The paper measures queries one at a time; a production service meets
them as an *open-loop stream* — clients issue requests at their own rate
regardless of how far the server has fallen behind, which is exactly the
regime in which tail latency, shedding and degradation become visible.
This module generates such streams deterministically: a seeded Poisson
process (exponential inter-arrival gaps) over the queries of an existing
:class:`~repro.workloads.queries.Workload`.

Everything is a pure function of ``(n, rate, seed)`` so a traffic
simulation replays bit-identically.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["ArrivalSchedule", "poisson_arrival_times"]


@dataclasses.dataclass(frozen=True)
class ArrivalSchedule:
    """Arrival timestamps for one open-loop run.

    ``times_s[i]`` is the simulated arrival time of request ``i`` (the
    ``i``-th workload query); strictly non-decreasing, starting after 0.
    """

    rate_qps: float
    seed: int
    times_s: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "times_s", np.ascontiguousarray(self.times_s, dtype=np.float64)
        )
        if self.times_s.ndim != 1:
            raise ValueError("arrival times must be a 1-d vector")
        if self.times_s.size and np.any(np.diff(self.times_s) < 0):
            raise ValueError("arrival times must be non-decreasing")

    def __len__(self) -> int:
        return int(self.times_s.shape[0])

    @property
    def span_s(self) -> float:
        """Time of the last arrival (0.0 for an empty schedule)."""
        return float(self.times_s[-1]) if len(self) else 0.0


def poisson_arrival_times(
    n_requests: int, rate_qps: float, seed: int
) -> ArrivalSchedule:
    """Seeded Poisson arrivals: ``n_requests`` timestamps at ``rate_qps``.

    Inter-arrival gaps are independent exponentials with mean
    ``1 / rate_qps``, drawn from ``numpy.random.default_rng(seed)`` in
    arrival order — same ``(n, rate, seed)``, same stream, bit for bit.
    ``times_s`` is float64.
    """
    if n_requests < 1:
        raise ValueError(f"need at least one request, got {n_requests}")
    if not rate_qps > 0.0:
        raise ValueError(f"arrival rate must be positive, got {rate_qps}")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(scale=1.0 / rate_qps, size=n_requests)
    return ArrivalSchedule(
        rate_qps=float(rate_qps),
        seed=int(seed),
        times_s=np.cumsum(gaps),
    )
