"""Thread-pool execution helpers for wall-clock parallel workloads.

The batch engine's deterministic *simulated* timing never depends on how
the host machine schedules work — each query is charged the paper-model
cost by its own :class:`~repro.simio.pipeline.PipelineSimulator`.  Real
wall-clock runs, however, benefit from parallelism: the distance kernels
are NumPy calls that release the GIL, so a plain thread pool scales chunk
scans across cores without any serialization of the descriptor matrices.

These helpers are deliberately tiny: shard a work list, run a function
over the shards in a pool, preserve order.  Anything fancier (processes,
async, work stealing) can layer on top later without touching callers.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

__all__ = ["default_workers", "resolve_workers", "shard", "run_parallel"]

_T = TypeVar("_T")
_R = TypeVar("_R")


def default_workers() -> int:
    """A sane worker count for CPU-bound NumPy work: one per core, capped
    so tiny containers and huge hosts both behave."""
    return max(1, min(32, os.cpu_count() or 1))


def resolve_workers(workers: Optional[int], n_items: int) -> int:
    """Clamp a requested worker count to the available work.

    ``None`` or 0 means "pick for me" (:func:`default_workers`); the result
    never exceeds ``n_items`` so no thread is created just to idle.
    """
    if workers is not None and workers < 0:
        raise ValueError(f"worker count cannot be negative, got {workers}")
    resolved = default_workers() if not workers else int(workers)
    return max(1, min(resolved, n_items)) if n_items else 1


def shard(items: Sequence[_T], n_shards: int) -> List[List[_T]]:
    """Split ``items`` into at most ``n_shards`` contiguous, near-equal
    shards (empty shards are dropped, order is preserved)."""
    if n_shards < 1:
        raise ValueError(f"need at least one shard, got {n_shards}")
    n = len(items)
    n_shards = min(n_shards, n) if n else 1
    out: List[List[_T]] = []
    start = 0
    for i in range(n_shards):
        # Integer split: remaining items spread over remaining shards.
        stop = start + -(-(n - start) // (n_shards - i))
        if stop > start:
            out.append(list(items[start:stop]))
        start = stop
    return out


def run_parallel(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    workers: Optional[int] = None,
) -> List[_R]:
    """Apply ``fn`` to every item, in a thread pool, preserving order.

    With one worker (or zero/one items) the pool is skipped entirely so
    sequential callers pay no executor overhead and tracebacks stay flat.
    """
    items = list(items)
    n_workers = resolve_workers(workers, len(items))
    if n_workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ThreadPoolExecutor(max_workers=n_workers) as pool:
        return list(pool.map(fn, items))
