"""Command-line interface.

Usage::

    repro list-experiments
    repro experiment table1 [--scale default|test]
    repro experiment all [--scale test]
    repro collection [--scale test]          # collection statistics
    repro demo                               # tiny end-to-end search demo
    repro batch-search SYSTEM COLLECTION     # batched queries + throughput
    repro faultsim [--rates 0,0.1,0.3]       # quality-vs-fault-rate sweep
    repro servesim [--loads 0.5,2,8]         # simulated-traffic service sweep
    repro shardsim [--shards 2,4,8]          # sharded scatter-gather sweep
    repro ingestsim [--crashes 3]            # streaming ingest under crashes
    repro ingestsim --crash-matrix 0         # kill/recover at every boundary
    repro verify-index DIR                   # deep-check a streaming index
    repro lint [PATH]                        # AST-based invariant checker

The experiment subcommand regenerates the paper artefacts (Tables 1-2,
Figures 1-7) and the ablations, printing each as fixed-width text.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from . import __version__
from .analysis.cli import add_lint_arguments, run_lint
from .experiments import (
    ablations,
    chunk_size_sweep,
    faultsim,
    fig1,
    ingestsim,
    quality_figures,
    servesim,
    shardsim,
    table1,
    table2,
)
from .experiments.config import get_scale
from .experiments.data import ExperimentData, prepare

__all__ = ["main", "CliError", "EXPERIMENT_RUNNERS"]


class CliError(Exception):
    """A user-facing command failure.

    Raised by subcommands for bad arguments, missing/corrupt files and the
    like; :func:`main` prints it to stderr and returns exit code 2, so
    every subcommand fails the same way (no tracebacks, no silent zero).
    """

#: Experiment id -> driver producing a renderable result.
EXPERIMENT_RUNNERS: Dict[str, Callable[[ExperimentData], object]] = {
    "table1": table1.run,
    "fig1": fig1.run,
    "fig2": quality_figures.run_fig2,
    "fig3": quality_figures.run_fig3,
    "fig4": quality_figures.run_fig4,
    "fig5": quality_figures.run_fig5,
    "table2": table2.run,
    "fig6": chunk_size_sweep.run_fig6,
    "fig7": chunk_size_sweep.run_fig7,
    "ablation_overlap": ablations.run_overlap_ablation,
    "ablation_ranking": ablations.run_ranking_ablation,
    "ablation_stoprule": ablations.run_stop_rule_ablation,
    "ablation_outliers": ablations.run_outlier_ablation,
    "ablation_hybrid": ablations.run_hybrid_ablation,
    "ablation_cache": ablations.run_cache_ablation,
    "ablation_chunker_zoo": ablations.run_chunker_zoo,
    "ablation_related_work": ablations.run_related_work_shootout,
    "ablation_approx_rules": ablations.run_approx_rules_ablation,
    "lessons_summary": ablations.run_lessons_summary,
    "faultsim": faultsim.run,
    "servesim": servesim.run,
    "shardsim": shardsim.run,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'The Quality vs. Time Trade-off for "
            "Approximate Image Descriptor Search' (ICDE Workshops 2005)"
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-experiments", help="list reproducible experiment ids")

    experiment = sub.add_parser(
        "experiment", help="regenerate one paper table/figure (or 'all')"
    )
    experiment.add_argument(
        "experiment_id", choices=sorted(EXPERIMENT_RUNNERS) + ["all"]
    )
    experiment.add_argument(
        "--scale", default="default", help="experiment scale (default|test)"
    )
    experiment.add_argument(
        "--export-dir",
        default=None,
        help="also write each result to <dir>/<id>.<format>",
    )
    experiment.add_argument(
        "--format", default="csv", choices=("csv", "json"),
        help="export format when --export-dir is given",
    )
    experiment.add_argument(
        "--plot", action="store_true",
        help="also render figure results as ASCII charts",
    )

    collection = sub.add_parser(
        "collection", help="print statistics of the synthetic collection"
    )
    collection.add_argument("--scale", default="default")

    sub.add_parser("demo", help="run a tiny end-to-end search demonstration")

    generate = sub.add_parser(
        "generate", help="write a synthetic collection to a descriptor file"
    )
    generate.add_argument("output", help="collection file to write")
    generate.add_argument("--scale", default="test")

    build = sub.add_parser(
        "build", help="build a persistent retrieval system from a collection file"
    )
    build.add_argument("collection", help="descriptor collection file")
    build.add_argument("output", help="directory for the built system")
    build.add_argument(
        "--chunker", default="sr", choices=("sr", "bag", "hybrid", "tsvq"),
    )
    build.add_argument(
        "--chunk-size", type=int, default=0,
        help="target descriptors per chunk (0 = auto)",
    )

    batch = sub.add_parser(
        "batch-search",
        help="run a batch of descriptor queries through the batch engine",
    )
    batch.add_argument("system", help="directory of a built system")
    batch.add_argument("collection", help="collection file to take queries from")
    batch.add_argument(
        "--batch", type=int, default=64, help="queries per batch (first N rows)"
    )
    batch.add_argument("--k", type=int, default=10)
    batch.add_argument(
        "--chunks", type=int, default=0,
        help="approximation budget in chunks (0 = exact)",
    )
    batch.add_argument(
        "--workers", type=int, default=1,
        help="thread count for wall-clock parallelism (results unchanged)",
    )
    batch.add_argument(
        "--compare-sequential", action="store_true",
        help="also time the per-query loop and report the speedup",
    )
    batch.add_argument(
        "--no-prune", action="store_true",
        help=(
            "disable the triangle-inequality chunk pruner "
            "(results are identical either way; this only adds host work)"
        ),
    )
    batch.add_argument(
        "--cache-mb", type=float, default=None, metavar="MB",
        help=(
            "enable the simulated cross-query chunk cache with this "
            "capacity; warm hits are charged at memory-copy cost"
        ),
    )
    batch.add_argument(
        "--router", action="store_true",
        help=(
            "rank chunks through coarse centroid groups (O(sqrt(C)) "
            "probes per query) instead of the full centroid scan"
        ),
    )

    query = sub.add_parser(
        "query", help="run one descriptor query against a built system"
    )
    query.add_argument("system", help="directory of a built system")
    query.add_argument("collection", help="collection file to take the query from")
    query.add_argument("--row", type=int, default=0, help="query descriptor row")
    query.add_argument("--k", type=int, default=10)
    query.add_argument(
        "--chunks", type=int, default=0,
        help="approximation budget in chunks (0 = exact)",
    )

    image_query = sub.add_parser(
        "image-query", help="rank images against one query image"
    )
    image_query.add_argument("system")
    image_query.add_argument("collection")
    image_query.add_argument("--image", type=int, required=True)
    image_query.add_argument("--top", type=int, default=5)

    faultsim_p = sub.add_parser(
        "faultsim",
        help="sweep storage fault rates; emit quality-vs-fault-rate curves",
    )
    faultsim_p.add_argument("--scale", default="test")
    faultsim_p.add_argument(
        "--seed", type=int, default=faultsim.DEFAULT_SEED,
        help="fault-plan root seed (same seed => same curve, bit for bit)",
    )
    faultsim_p.add_argument(
        "--rates", default=None,
        help="comma-separated fault rates in [0, 0.5] (default: built-in sweep)",
    )
    faultsim_p.add_argument(
        "--family", default="SR", choices=("SR", "BAG"),
        help="chunk-forming family to degrade",
    )
    faultsim_p.add_argument("--size-class", default="MEDIUM",
                            choices=("SMALL", "MEDIUM", "LARGE"))
    faultsim_p.add_argument("--workload", default="DQ", choices=("DQ", "SQ"))
    faultsim_p.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the sweep as a deterministic JSON report",
    )
    faultsim_p.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="resume file: finished sweep points are skipped on rerun",
    )

    servesim_p = sub.add_parser(
        "servesim",
        help=(
            "simulate open-loop traffic against the resilient query "
            "service; emit SLO metrics per (fault rate, load) cell"
        ),
    )
    servesim_p.add_argument("--scale", default="test")
    servesim_p.add_argument(
        "--seed", type=int, default=servesim.DEFAULT_SEED,
        help="root seed (same seed => byte-identical report)",
    )
    servesim_p.add_argument(
        "--loads", default=None,
        help=(
            "comma-separated load factors (multiples of the pool's "
            "calibrated capacity; default: built-in grid)"
        ),
    )
    servesim_p.add_argument(
        "--fault-rates", default=None,
        help="comma-separated fault rates in [0, 0.5] (default: built-in grid)",
    )
    servesim_p.add_argument(
        "--workers", type=int, default=4,
        help="simulated searcher workers in the pool",
    )
    servesim_p.add_argument(
        "--family", default="SR", choices=("SR", "BAG"),
        help="chunk-forming family to serve",
    )
    servesim_p.add_argument("--size-class", default="SMALL",
                            choices=("SMALL", "MEDIUM", "LARGE"))
    servesim_p.add_argument("--workload", default="DQ", choices=("DQ", "SQ"))
    servesim_p.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the grid as a deterministic JSON report",
    )
    servesim_p.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="resume file: finished grid cells are skipped on rerun",
    )
    servesim_p.add_argument(
        "--cache-mb", type=float, default=None, metavar="MB",
        help=(
            "share a simulated chunk cache of this capacity across the "
            "pool's workers (fresh per grid cell)"
        ),
    )

    shardsim_p = sub.add_parser(
        "shardsim",
        help=(
            "simulate sharded scatter-gather serving; emit SLO and "
            "robustness metrics per (placement, shards, fault rate) cell"
        ),
    )
    shardsim_p.add_argument("--scale", default="test")
    shardsim_p.add_argument(
        "--seed", type=int, default=servesim.DEFAULT_SEED,
        help="root seed (same seed => byte-identical report)",
    )
    shardsim_p.add_argument(
        "--placements", default=None,
        help=(
            "comma-separated placement strategies "
            "(greedy, split, round_robin, random; default: built-in grid)"
        ),
    )
    shardsim_p.add_argument(
        "--shards", default=None,
        help="comma-separated shard counts (default: built-in grid)",
    )
    shardsim_p.add_argument(
        "--fault-rates", default=None,
        help="comma-separated fault rates in [0, 0.5] (default: built-in grid)",
    )
    shardsim_p.add_argument(
        "--load", type=float, default=shardsim.DEFAULT_LOAD_FACTOR,
        help=(
            "offered load as a multiple of a single node's calibrated "
            "exact-search capacity"
        ),
    )
    shardsim_p.add_argument(
        "--replicas", type=int, default=2,
        help="replication factor (capped at the cell's shard count)",
    )
    shardsim_p.add_argument(
        "--workers-per-shard", type=int, default=1,
        help="simulated searcher workers on each shard node",
    )
    shardsim_p.add_argument(
        "--hedge-factor", type=float, default=shardsim.HEDGE_FACTOR,
        help=(
            "hedge delay as a multiple of the expected per-shard "
            "sub-request time (0 disables hedging)"
        ),
    )
    shardsim_p.add_argument(
        "--family", default="BAG", choices=("SR", "BAG"),
        help="chunk-forming family to shard (BAG is skewed on purpose)",
    )
    shardsim_p.add_argument("--size-class", default="SMALL",
                            choices=("SMALL", "MEDIUM", "LARGE"))
    shardsim_p.add_argument("--workload", default="DQ", choices=("DQ", "SQ"))
    shardsim_p.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the grid as a deterministic JSON report",
    )
    shardsim_p.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="resume file: finished grid cells are skipped on rerun",
    )

    ingestsim_p = sub.add_parser(
        "ingestsim",
        help=(
            "streaming-ingest watch mode: grow the on-disk index 10%%->100%% "
            "under interleaved queries, crashes and compactions"
        ),
    )
    ingestsim_p.add_argument("--scale", default="test")
    ingestsim_p.add_argument(
        "--seed", type=int, default=ingestsim.DEFAULT_SEED,
        help="root seed (default: %(default)s)",
    )
    ingestsim_p.add_argument(
        "--steps", type=int, default=None,
        help="growth steps from the 10%% base to the full collection",
    )
    ingestsim_p.add_argument(
        "--batch-ops", type=int, default=None,
        help="operations per WAL batch (one group commit each)",
    )
    ingestsim_p.add_argument(
        "--delete-fraction", type=float, default=None,
        help="deletes per step as a fraction of that step's inserts",
    )
    ingestsim_p.add_argument(
        "--crashes", type=int, default=None,
        help="seeded kills injected at protocol boundaries across the run",
    )
    ingestsim_p.add_argument(
        "--compact-every", type=int, default=None,
        help="checkpoint (compaction) period, in growth steps",
    )
    ingestsim_p.add_argument(
        "--crash-matrix", type=int, default=None, metavar="N",
        help=(
            "instead of watch mode: kill the writer at N seeded protocol "
            "boundaries (0 = every boundary), recover and deep-verify each"
        ),
    )
    ingestsim_p.add_argument(
        "--workdir", default=None,
        help="working directory for the on-disk index (default: a temp dir)",
    )
    ingestsim_p.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the deterministic JSON report to PATH",
    )

    verify_p = sub.add_parser(
        "verify-index",
        help=(
            "deep-check a streaming-index directory: checksums, extents, "
            "exact centroids/radii, WAL continuity, liveness accounting"
        ),
    )
    verify_p.add_argument("directory", help="streaming-index directory")
    verify_p.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the check report as JSON to PATH",
    )

    lint = sub.add_parser(
        "lint",
        help="check the package against the repo's reproduction invariants",
    )
    add_lint_arguments(lint)
    return parser


def _cmd_list(_: argparse.Namespace) -> int:
    for experiment_id in sorted(EXPERIMENT_RUNNERS):
        print(experiment_id)
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    scale = get_scale(args.scale)
    data = prepare(scale)
    ids = (
        sorted(EXPERIMENT_RUNNERS)
        if args.experiment_id == "all"
        else [args.experiment_id]
    )
    #: Paper axes: Figure 1 is log-y; Figures 6-7 are log-x.
    log_axes = {"fig1": (False, True), "fig6": (True, False), "fig7": (True, False)}
    for experiment_id in ids:
        result = EXPERIMENT_RUNNERS[experiment_id](data)
        print(result.render())
        print()
        if getattr(args, "plot", False) and hasattr(result, "series"):
            from .experiments.ascii_plot import plot_figure

            log_x, log_y = log_axes.get(experiment_id, (False, False))
            print(plot_figure(result, log_x=log_x, log_y=log_y))
            print()
        if args.export_dir:
            import os

            from .experiments.export import write_result

            os.makedirs(args.export_dir, exist_ok=True)
            write_result(
                result,
                os.path.join(args.export_dir, f"{experiment_id}.{args.format}"),
                fmt=args.format,
            )
    return 0


def _cmd_collection(args: argparse.Namespace) -> int:
    scale = get_scale(args.scale)
    from .workloads.synthetic import generate_collection

    collection = generate_collection(scale.synthetic)
    print(f"scale:           {scale.name}")
    print(f"descriptors:     {len(collection)}")
    print(f"dimensions:      {collection.dimensions}")
    print(f"images:          {len(set(collection.image_ids.tolist()))}")
    print(f"storage (bytes): {collection.storage_bytes}")
    return 0


def _cmd_demo(_: argparse.Namespace) -> int:
    import numpy as np

    from .chunking.srtree_chunker import SRTreeChunker
    from .core.chunk_index import build_chunk_index
    from .core.ground_truth import exact_knn
    from .core.search import ChunkSearcher
    from .core.stop_rules import MaxChunks
    from .workloads.synthetic import SyntheticImageConfig, generate_collection

    collection = generate_collection(SyntheticImageConfig(n_images=60, seed=7))
    chunking = SRTreeChunker(leaf_capacity=64).form_chunks(collection)
    index = build_chunk_index(chunking.retained, chunking.chunk_set, name="demo")
    searcher = ChunkSearcher(index)
    query = collection.vectors[0].astype(np.float64)

    exact = searcher.search(query, k=10)
    approx = searcher.search(query, k=10, stop_rule=MaxChunks(3))
    truth = set(exact_knn(collection, query, 10).tolist())
    hits = sum(1 for i in approx.neighbor_ids() if int(i) in truth)
    print(f"collection: {len(collection)} descriptors in {index.n_chunks} chunks")
    print(
        f"exact search:  {exact.chunks_read} chunks, "
        f"{exact.elapsed_s * 1000:.1f} ms simulated"
    )
    print(
        f"approx search: {approx.chunks_read} chunks, "
        f"{approx.elapsed_s * 1000:.1f} ms simulated, "
        f"precision@10 = {hits / 10:.2f}"
    )
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from .storage.collection_file import write_collection_file
    from .workloads.synthetic import generate_collection

    scale = get_scale(args.scale)
    collection = generate_collection(scale.synthetic)
    write_collection_file(args.output, collection)
    print(
        f"wrote {len(collection)} descriptors "
        f"({collection.dimensions}-d) to {args.output}"
    )
    return 0


def _make_chunker(name: str, chunk_size: int, collection):
    from .chunking.bag import BagClusterer, estimate_mpi
    from .chunking.hybrid import HybridChunker
    from .chunking.srtree_chunker import SRTreeChunker
    from .chunking.tsvq import TsvqChunker

    if chunk_size <= 0:
        chunk_size = int(min(4096, max(16, 2 * len(collection) ** 0.5)))
    if name == "sr":
        return SRTreeChunker(leaf_capacity=chunk_size)
    if name == "hybrid":
        return HybridChunker(target_chunk_size=chunk_size)
    if name == "tsvq":
        return TsvqChunker(max_chunk_size=chunk_size)
    mpi = estimate_mpi(collection)
    return BagClusterer(
        mpi=mpi,
        target_clusters=max(1, len(collection) // chunk_size),
        max_passes=400,
    )


def _cmd_build(args: argparse.Namespace) -> int:
    from .storage.collection_file import read_collection_file
    from .system import ImageRetrievalSystem

    collection = read_collection_file(args.collection)
    chunker = _make_chunker(args.chunker, args.chunk_size, collection)
    system = ImageRetrievalSystem(chunker=chunker)
    system.index_images(collection)
    system.save(args.output)
    print(
        f"built {args.chunker} system over {system.n_descriptors} descriptors "
        f"from {system.n_images} images -> {args.output}"
    )
    return 0


def _cmd_batch_search(args: argparse.Namespace) -> int:
    import dataclasses
    import time

    from .storage.collection_file import read_collection_file
    from .system import ImageRetrievalSystem

    system = ImageRetrievalSystem.load(args.system)
    collection = read_collection_file(args.collection)
    if args.batch < 1:
        raise CliError(f"--batch must be at least 1, got {args.batch}")
    if len(collection) == 0:
        raise CliError(f"collection {args.collection} holds no descriptors")
    if args.no_prune:
        system.prune = False
    chunk_cache = None
    if args.cache_mb is not None:
        if not args.cache_mb > 0.0:
            raise CliError(f"--cache-mb must be positive, got {args.cache_mb}")
        from .simio.chunk_cache import LruChunkCache

        chunk_cache = LruChunkCache(
            capacity_bytes=int(args.cache_mb * (1 << 20))
        )
        system.cost_model = dataclasses.replace(
            system.cost_model, chunk_cache=chunk_cache
        )
    n = min(args.batch, len(collection))
    queries = collection.vectors[:n].astype(float)
    if args.chunks > 0:
        system.default_stop_chunks = args.chunks
        exact = False
    else:
        exact = True

    start = time.perf_counter()
    batch = system.find_similar_descriptors_batch(
        queries, k=args.k, exact=exact, workers=args.workers,
        use_router=args.router,
    )
    batch_wall_s = time.perf_counter() - start

    completed = sum(1 for r in batch if r.completed)
    print(f"batch of {len(batch)} queries (k={args.k}, workers={args.workers}):")
    print(f"  chunks read:        {batch.total_chunks_read}")
    print(f"  chunks pruned:      {batch.total_chunks_pruned}")
    if chunk_cache is not None:
        print(f"  cache hit rate:     {chunk_cache.hit_rate:.2%}")
    print(f"  mean simulated:     {batch.mean_elapsed_s * 1000:.1f} ms/query")
    print(f"  exact completions:  {completed}/{len(batch)}")
    print(
        f"  wall clock:         {batch_wall_s:.3f} s "
        f"({len(batch) / batch_wall_s:.1f} queries/s)"
    )
    if args.compare_sequential:
        start = time.perf_counter()
        for row in range(n):
            system.find_similar_descriptors(queries[row], k=args.k, exact=exact)
        sequential_wall_s = time.perf_counter() - start
        print(
            f"  sequential loop:    {sequential_wall_s:.3f} s "
            f"({n / sequential_wall_s:.1f} queries/s)"
        )
        print(f"  batch speedup:      {sequential_wall_s / batch_wall_s:.2f}x")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from .storage.collection_file import read_collection_file
    from .system import ImageRetrievalSystem

    system = ImageRetrievalSystem.load(args.system)
    collection = read_collection_file(args.collection)
    if not 0 <= args.row < len(collection):
        raise CliError(f"row {args.row} out of range (collection has {len(collection)})")
    query = collection.vectors[args.row].astype(float)
    if args.chunks > 0:
        system.default_stop_chunks = args.chunks
        result = system.find_similar_descriptors(query, k=args.k)
    else:
        result = system.find_similar_descriptors(query, k=args.k, exact=True)
    print(
        f"query row {args.row}: {result.chunks_read} chunks, "
        f"{result.elapsed_s * 1000:.1f} ms simulated, exact={result.completed}"
    )
    for neighbor in result.neighbors:
        print(f"  id={neighbor.descriptor_id:8d}  distance={neighbor.distance:.6f}")
    return 0


def _cmd_image_query(args: argparse.Namespace) -> int:
    import numpy as np

    from .storage.collection_file import read_collection_file
    from .system import ImageRetrievalSystem

    system = ImageRetrievalSystem.load(args.system)
    collection = read_collection_file(args.collection)
    rows = np.flatnonzero(collection.image_ids == args.image)
    if rows.size == 0:
        raise CliError(f"image {args.image} has no descriptors in {args.collection}")
    matches = system.find_similar_images(
        collection.vectors[rows].astype(float), top_images=args.top
    )
    print(f"query image {args.image} ({rows.size} descriptors):")
    for match in matches:
        print(
            f"  image {match.image_id:6d}  votes={match.votes:4d}  "
            f"matched query descriptors={match.matched_query_descriptors}"
        )
    return 0


def _cmd_faultsim(args: argparse.Namespace) -> int:
    import json

    scale = get_scale(args.scale)
    if args.rates is None:
        rates = list(faultsim.DEFAULT_RATES)
    else:
        try:
            rates = [float(token) for token in args.rates.split(",") if token.strip()]
        except ValueError:
            raise CliError(f"--rates must be comma-separated numbers, got {args.rates!r}")
        if not rates:
            raise CliError("--rates must name at least one fault rate")
        if any(r < 0.0 or r > 0.5 for r in rates):
            raise CliError("fault rates must lie in [0, 0.5]")
    data = prepare(scale)
    result = faultsim.sweep(
        data,
        family=args.family,
        size_class=args.size_class,
        workload_name=args.workload,
        rates=rates,
        seed=args.seed,
        checkpoint_path=args.checkpoint,
    )
    print(result.render())
    if args.json:
        payload = faultsim.report(
            data,
            family=args.family,
            size_class=args.size_class,
            workload_name=args.workload,
            rates=rates,
            seed=args.seed,
            figure=result,
        )
        with open(args.json, "w") as handle:
            json.dump(payload, handle, sort_keys=True, indent=2)
            handle.write("\n")
        print(f"wrote JSON report to {args.json}")
    return 0


def _parse_grid(text, name, upper=None):
    """Comma-separated floats from a CLI flag, with range checking."""
    try:
        values = [float(token) for token in text.split(",") if token.strip()]
    except ValueError:
        raise CliError(f"{name} must be comma-separated numbers, got {text!r}")
    if not values:
        raise CliError(f"{name} must name at least one value")
    if any(v < 0.0 or (upper is not None and v > upper) for v in values):
        bound = f"[0, {upper}]" if upper is not None else "non-negative"
        raise CliError(f"{name} values must lie in {bound}")
    return values


def _cmd_servesim(args: argparse.Namespace) -> int:
    import json

    scale = get_scale(args.scale)
    if args.loads is None:
        loads = list(servesim.DEFAULT_LOAD_FACTORS)
    else:
        loads = _parse_grid(args.loads, "--loads")
        if any(not load > 0.0 for load in loads):
            raise CliError("--loads values must be positive")
    if args.fault_rates is None:
        fault_rates = list(servesim.DEFAULT_FAULT_RATES)
    else:
        fault_rates = _parse_grid(args.fault_rates, "--fault-rates", upper=0.5)
    if args.workers < 1:
        raise CliError(f"--workers must be at least 1, got {args.workers}")
    if args.cache_mb is not None and not args.cache_mb > 0.0:
        raise CliError(f"--cache-mb must be positive, got {args.cache_mb}")
    data = prepare(scale)
    result = servesim.sweep(
        data,
        family=args.family,
        size_class=args.size_class,
        workload_name=args.workload,
        load_factors=loads,
        fault_rates=fault_rates,
        seed=args.seed,
        n_workers=args.workers,
        checkpoint_path=args.checkpoint,
        cache_mb=args.cache_mb,
    )
    print(result.render())
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(result.to_report(), handle, sort_keys=True, indent=2)
            handle.write("\n")
        print(f"wrote JSON report to {args.json}")
    return 0


def _cmd_shardsim(args: argparse.Namespace) -> int:
    import json

    scale = get_scale(args.scale)
    if args.placements is None:
        placements = list(shardsim.DEFAULT_PLACEMENTS)
    else:
        placements = [
            token.strip()
            for token in args.placements.split(",")
            if token.strip()
        ]
        if not placements:
            raise CliError("--placements must name at least one strategy")
    if args.shards is None:
        shard_counts = list(shardsim.DEFAULT_SHARD_COUNTS)
    else:
        shard_counts = [
            int(count) for count in _parse_grid(args.shards, "--shards")
        ]
        if any(count < 1 for count in shard_counts):
            raise CliError("--shards values must be at least 1")
    if args.fault_rates is None:
        fault_rates = list(shardsim.DEFAULT_FAULT_RATES)
    else:
        fault_rates = _parse_grid(args.fault_rates, "--fault-rates", upper=0.5)
    if not args.load > 0.0:
        raise CliError(f"--load must be positive, got {args.load}")
    if args.replicas < 1:
        raise CliError(f"--replicas must be at least 1, got {args.replicas}")
    if args.workers_per_shard < 1:
        raise CliError(
            f"--workers-per-shard must be at least 1, got {args.workers_per_shard}"
        )
    if args.hedge_factor < 0.0:
        raise CliError(
            f"--hedge-factor cannot be negative, got {args.hedge_factor}"
        )
    data = prepare(scale)
    try:
        result = shardsim.sweep(
            data,
            family=args.family,
            size_class=args.size_class,
            workload_name=args.workload,
            placements=placements,
            shard_counts=shard_counts,
            fault_rates=fault_rates,
            load_factor=args.load,
            n_replicas=args.replicas,
            workers_per_shard=args.workers_per_shard,
            hedge_factor=args.hedge_factor,
            seed=args.seed,
            checkpoint_path=args.checkpoint,
        )
    except ValueError as exc:
        raise CliError(str(exc))
    print(result.render())
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(result.to_report(), handle, sort_keys=True, indent=2)
            handle.write("\n")
        print(f"wrote JSON report to {args.json}")
    return 0


def _cmd_ingestsim(args: argparse.Namespace) -> int:
    import dataclasses
    import json
    import shutil
    import tempfile

    scale = get_scale(args.scale)
    overrides = {}
    if args.steps is not None:
        overrides["steps"] = args.steps
    if args.batch_ops is not None:
        overrides["batch_ops"] = args.batch_ops
    if args.delete_fraction is not None:
        overrides["delete_fraction"] = args.delete_fraction
    if args.crashes is not None:
        overrides["n_crashes"] = args.crashes
    if args.compact_every is not None:
        overrides["compact_every"] = args.compact_every
    try:
        config = dataclasses.replace(ingestsim.IngestSimConfig(), **overrides)
    except ValueError as exc:
        raise CliError(str(exc))

    workdir = args.workdir or tempfile.mkdtemp(prefix="repro-ingestsim-")
    failed = False
    try:
        if args.crash_matrix is not None:
            if args.crash_matrix < 0:
                raise CliError(
                    f"--crash-matrix cannot be negative, got {args.crash_matrix}"
                )
            n_points = args.crash_matrix or None  # 0 = every boundary
            report = ingestsim.crash_matrix(
                scale, workdir, seed=args.seed, n_points=n_points
            )
            print(
                f"crash matrix: scale={report['scale']} seed={report['seed']} "
                f"sites={report['n_sites']} tested={len(report['results'])}"
            )
            for row in report["results"]:
                verdict = "ok" if row["crashed"] and row["verify_ok"] else "FAIL"
                print(
                    f"  step {row['step']:3d}  {row['site']:<18s} "
                    f"recovered {row['n_descriptors']:5d} descriptors  {verdict}"
                )
            failed = not report["all_ok"]
            print(f"all recoveries consistent: {report['all_ok']}")
        else:
            report = ingestsim.simulate(
                scale, workdir, seed=args.seed, config=config
            )
            print(
                f"ingestsim: scale={report['scale']} seed={report['seed']} "
                f"k={report['k']} total={report['n_total']} "
                f"base={report['base_size']}"
            )
            header = (
                f"{'step':>4s} {'frac':>6s} {'descr':>6s} {'chunks':>6s} "
                f"{'recall':>7s} {'ms/query':>9s} {'io_s':>8s} {'recov':>5s}"
            )
            print(header)
            for row in report["series"]:
                print(
                    f"{row['step']:4d} {row['fraction']:6.2f} "
                    f"{row['n_descriptors']:6d} {row['n_chunks']:6d} "
                    f"{row['recall']:7.4f} {row['elapsed_ms']:9.3f} "
                    f"{row['ingest_io_s']:8.4f} {row['recoveries']:5d}"
                )
            print(
                f"crashes injected {report['crashes_injected']}, "
                f"unacked batches replayed {report['unacked_batches_replayed']}, "
                f"final verify ok: {report['final_verify_ok']}"
            )
            failed = not report["final_verify_ok"]
        if args.json:
            with open(args.json, "w") as handle:
                json.dump(report, handle, sort_keys=True, indent=2)
                handle.write("\n")
            print(f"wrote JSON report to {args.json}")
    finally:
        if args.workdir is None:
            shutil.rmtree(workdir, ignore_errors=True)
    if failed:
        raise CliError("ingestsim consistency check failed (see report above)")
    return 0


def _cmd_verify_index(args: argparse.Namespace) -> int:
    import json

    from .core.ingest import verify_streaming_index

    report = verify_streaming_index(args.directory)
    for check in report["checks"]:
        verdict = "ok" if check["ok"] else "FAIL"
        print(f"{check['name']:<10s} {verdict:<4s} {check['detail']}")
    if report["ok"]:
        print(
            f"index ok: {report['n_descriptors']} descriptors in "
            f"{report['n_chunks']} chunks, {report['replayed_batches']} "
            f"replayed batches, {report['torn_bytes']} torn WAL bytes"
        )
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, sort_keys=True, indent=2)
            handle.write("\n")
        print(f"wrote JSON report to {args.json}")
    if not report["ok"]:
        raise CliError(f"index verification failed for {args.directory}")
    return 0


_COMMANDS = {
    "list-experiments": _cmd_list,
    "experiment": _cmd_experiment,
    "collection": _cmd_collection,
    "demo": _cmd_demo,
    "generate": _cmd_generate,
    "build": _cmd_build,
    "batch-search": _cmd_batch_search,
    "query": _cmd_query,
    "image-query": _cmd_image_query,
    "faultsim": _cmd_faultsim,
    "servesim": _cmd_servesim,
    "shardsim": _cmd_shardsim,
    "ingestsim": _cmd_ingestsim,
    "verify-index": _cmd_verify_index,
    "lint": run_lint,
}


def main(argv=None) -> int:
    """Parse arguments, dispatch, and map failures to exit codes.

    0 on success; 1 when ``lint`` finds violations; 2 on any command
    failure (bad arguments, missing/corrupt files, unknown scale) — never
    a traceback, never a silent zero.
    """
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except CliError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    except KeyError as exc:
        # e.g. get_scale("galactic"); KeyError carries the message as args[0].
        message = exc.args[0] if exc.args else exc
        print(f"repro: error: {message}", file=sys.stderr)
        return 2
    except (OSError, ValueError) as exc:
        # Missing or corrupt input files (CorruptFileError is an IOError),
        # malformed arrays, and similar user-input failures.
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
