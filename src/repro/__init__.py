"""repro — reproduction of "The Quality vs. Time Trade-off for Approximate
Image Descriptor Search" (Sigurðardóttir, Hauksson, Jónsson, Amsaleg; ICDE
Workshops / EMMA 2005).

The library implements the paper's full system from scratch:

* a chunked approximate nearest-neighbor search engine over image
  descriptors (:mod:`repro.core`),
* the two chunk-forming strategies under study — SR-tree leaves
  (:mod:`repro.srtree`, :class:`repro.chunking.SRTreeChunker`) and the BAG
  clustering algorithm (:class:`repro.chunking.BagClusterer`) — plus
  baselines and the paper's proposed hybrid,
* the two-file on-disk chunk index (:mod:`repro.storage`),
* a calibrated simulated disk/CPU substrate reproducing the paper's 2005
  hardware timings (:mod:`repro.simio`),
* synthetic descriptor workloads standing in for the paper's 5M-descriptor
  collection (:mod:`repro.workloads`), and
* experiment drivers regenerating every table and figure
  (:mod:`repro.experiments`).

Quickstart
----------
>>> from repro import (SyntheticImageConfig, generate_collection,
...                    SRTreeChunker, build_chunk_index, ChunkSearcher)
>>> collection = generate_collection(SyntheticImageConfig(n_images=50, seed=7))
>>> chunks = SRTreeChunker(leaf_capacity=64).form_chunks(collection)
>>> index = build_chunk_index(chunks.retained, chunks.chunk_set, name="SR/demo")
>>> result = ChunkSearcher(index).search(collection.vectors[0], k=10)
>>> result.completed
True
"""

from .chunking import (
    BagClusterer,
    Chunker,
    ChunkingResult,
    HybridChunker,
    RandomChunker,
    RoundRobinChunker,
    SRTreeChunker,
    estimate_mpi,
)
from .core import (
    BatchChunkSearcher,
    BatchSearchResult,
    ChunkIndex,
    ChunkIndexMaintainer,
    EpsilonApproximation,
    PacApproximation,
    ChunkSearcher,
    DescriptorCollection,
    ExactCompletion,
    GroundTruthStore,
    MaxChunks,
    NeighborSet,
    SearchResult,
    StreamingChunkIndex,
    TimeBudget,
    build_chunk_index,
    exact_knn,
    exact_knn_batch,
    precision_at_k,
    verify_streaming_index,
)
from .simio import PAPER_2005_COST_MODEL, CostModel, CpuModel, DiskModel
from .storage import delete_op, insert_op
from .srtree import SRTree, bulk_load
from .system import ImageRetrievalSystem
from .workloads import (
    SyntheticImageConfig,
    Workload,
    dataset_queries,
    generate_collection,
    space_queries,
)

__version__ = "1.0.0"

__all__ = [
    "BagClusterer",
    "BatchChunkSearcher",
    "BatchSearchResult",
    "Chunker",
    "ChunkingResult",
    "HybridChunker",
    "RandomChunker",
    "RoundRobinChunker",
    "SRTreeChunker",
    "estimate_mpi",
    "ChunkIndex",
    "ChunkIndexMaintainer",
    "EpsilonApproximation",
    "PacApproximation",
    "ChunkSearcher",
    "DescriptorCollection",
    "ExactCompletion",
    "GroundTruthStore",
    "MaxChunks",
    "NeighborSet",
    "SearchResult",
    "StreamingChunkIndex",
    "TimeBudget",
    "build_chunk_index",
    "delete_op",
    "exact_knn",
    "exact_knn_batch",
    "insert_op",
    "precision_at_k",
    "verify_streaming_index",
    "PAPER_2005_COST_MODEL",
    "CostModel",
    "CpuModel",
    "DiskModel",
    "SRTree",
    "bulk_load",
    "ImageRetrievalSystem",
    "SyntheticImageConfig",
    "Workload",
    "dataset_queries",
    "generate_collection",
    "space_queries",
    "__version__",
]
